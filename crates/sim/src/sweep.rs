//! Parameter-sweep driver: run a grid of configurations over a workload
//! and collect labeled metrics, warming each workload/config pair once.
//!
//! This is the machinery behind the §6.4 design-space exploration and the
//! CLI's `sweep` subcommand; downstream users point it at their own
//! workloads.

use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

use fpb_core::effective_config_desc;
use fpb_types::SystemConfig;

use crate::engine::{run_workload_warmed_arena, warm_cores, SimArena, SimOptions};
use crate::exec::{parallel_map_arena, parallel_map_indexed};
use crate::frontend::CoreState;
use crate::journal::{fingerprint64, JournalError, JournalHeader, JournalMode, JournalWriter};
use crate::metrics::{json_string, Metrics};
use crate::resultcache::ResultCache;
use crate::scheme::{Scheme, SchemeRegistry, SchemeSetup, SchemeSpec};
use crate::supervise::{supervise_map_ordered, CancelToken, JobOutcome, SupervisePolicy};
use fpb_trace::Workload;

/// One labeled variant of an axis: a point label and the configuration
/// transformer that produces it.
///
/// Transformers are `Send + Sync` so a sweep can be fanned across worker
/// threads (they are pure config rewrites; all built-in axes qualify).
pub type Variant = (
    String,
    Box<dyn Fn(SystemConfig) -> SystemConfig + Send + Sync>,
);

/// One axis of a sweep: a label and a configuration transformer.
pub struct Axis {
    /// Axis name (becomes part of each point's label).
    pub name: &'static str,
    /// Labeled configuration variants.
    pub variants: Vec<Variant>,
}

impl std::fmt::Debug for Axis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Axis")
            .field("name", &self.name)
            .field("variants", &self.variants.len())
            .finish()
    }
}

impl Axis {
    /// Line-size axis (Fig. 19's values by default).
    pub fn line_bytes(values: &[u32]) -> Axis {
        Axis {
            name: "line",
            variants: values
                .iter()
                .map(|&v| {
                    let f: Box<dyn Fn(SystemConfig) -> SystemConfig + Send + Sync> =
                        Box::new(move |c: SystemConfig| c.with_line_bytes(v));
                    (format!("{v}B"), f)
                })
                .collect(),
        }
    }

    /// LLC-capacity axis (Fig. 20).
    pub fn llc_mib(values: &[u32]) -> Axis {
        Axis {
            name: "llc",
            variants: values
                .iter()
                .map(|&v| {
                    let f: Box<dyn Fn(SystemConfig) -> SystemConfig + Send + Sync> =
                        Box::new(move |c: SystemConfig| c.with_llc_mib(v));
                    (format!("{v}M"), f)
                })
                .collect(),
        }
    }

    /// DIMM-token axis (Fig. 22).
    pub fn pt_dimm(values: &[u64]) -> Axis {
        Axis {
            name: "pt",
            variants: values
                .iter()
                .map(|&v| {
                    let f: Box<dyn Fn(SystemConfig) -> SystemConfig + Send + Sync> =
                        Box::new(move |c: SystemConfig| c.with_pt_dimm(v));
                    (format!("{v}t"), f)
                })
                .collect(),
        }
    }

    /// GCP-efficiency axis (Figs. 11/15/16).
    pub fn e_gcp(values: &[f64]) -> Axis {
        Axis {
            name: "egcp",
            variants: values
                .iter()
                .map(|&v| {
                    let f: Box<dyn Fn(SystemConfig) -> SystemConfig + Send + Sync> =
                        Box::new(move |c: SystemConfig| c.with_gcp_efficiency(v));
                    (format!("{v}"), f)
                })
                .collect(),
        }
    }
}

/// One sweep result point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// `axis=variant` labels joined with `,`, plus the scheme label.
    pub label: String,
    /// Metrics of the scheme under this configuration.
    pub metrics: Metrics,
    /// Metrics of the baseline scheme under the same configuration.
    pub baseline: Metrics,
}

impl SweepPoint {
    /// Speedup of the scheme over the baseline at this point (Eq. 7).
    pub fn speedup(&self) -> f64 {
        self.metrics.speedup_over(&self.baseline)
    }
}

/// Controls the two-level result-reuse ladder of a sweep.
///
/// Level 1 (semantic dedup) shares engine runs *within* one sweep:
/// every run is keyed by its unit description — workload, options, the
/// scheme's *effective* slice of the config
/// ([`effective_config_desc`] under the setup's declared
/// [`Scheme::sensitivity`]), and the built setup itself. Points whose
/// keys collide form an equivalence class; one representative simulates
/// and the rest splice its [`Metrics`]. Baseline runs dedup the same
/// way — on power-axis grids they are where the redundancy lives (a
/// power-blind baseline collapses the whole axis into one run).
///
/// Level 2 (the persistent [`ResultCache`]) shares runs *across*
/// sweeps, keyed by the same unit descriptions — so it is only
/// consulted when dedup is on.
///
/// Reuse can never change results: metrics round-trip exactly through
/// the cache, and a shared run is bit-for-bit the run every member
/// point would have done itself (engine determinism). Sweep JSON is
/// byte-identical with reuse on or off; CI gates on the comparison.
#[derive(Debug, Clone)]
pub struct ReuseOptions {
    /// Enable level 1: share runs whose unit descriptions collide.
    /// Off = every point simulates scheme and baseline itself, exactly
    /// the historical work profile (and the cache is ignored).
    pub dedup: bool,
    /// Level 2: persistent result-cache path (`None` disables it).
    pub cache: Option<PathBuf>,
}

impl Default for ReuseOptions {
    /// Dedup on, no persistent cache.
    fn default() -> Self {
        ReuseOptions { dedup: true, cache: None }
    }
}

impl ReuseOptions {
    /// Both levels off (`--no-result-cache`).
    pub fn disabled() -> Self {
        ReuseOptions { dedup: false, cache: None }
    }
}

/// What the reuse ladder saved in one sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReuseStats {
    /// Engine runs a reuse-free sweep would perform (two per point —
    /// scheme and baseline — over the points not restored from a
    /// journal).
    pub runs_total: usize,
    /// Distinct units after semantic dedup.
    pub runs_unique: usize,
    /// Units answered by the persistent cache.
    pub cache_hits: usize,
    /// Units actually dispatched to the engine this run.
    pub simulated: usize,
}

impl ReuseStats {
    /// Collapse factor of level 1: runs per unique unit (1.0 when
    /// nothing dedups, or dedup is off).
    pub fn dedup_ratio(&self) -> f64 {
        if self.runs_unique == 0 {
            1.0
        } else {
            self.runs_total as f64 / self.runs_unique as f64
        }
    }
}

/// One deduplicated engine run: a representative grid point and the
/// setup built against its config. Every member point of the unit's
/// equivalence class splices the representative's metrics.
struct SimUnit {
    /// Dedup/cache key — see [`unit_desc`].
    desc: String,
    /// Representative grid index (the first point to intern the unit).
    rep: usize,
    /// Setup built against the representative's config.
    setup: SchemeSetup,
}

/// The unit plan for a sweep's pending points: interned units plus each
/// point's `(scheme, baseline)` unit indices.
struct UnitPlan {
    units: Vec<SimUnit>,
    /// Parallel to the pending slice handed to [`plan_units`].
    point_units: Vec<(usize, usize)>,
}

/// Dedup/cache key of one engine run. The config projection is chosen
/// by the *setup's* declared sensitivity, and the built setup itself
/// joins the key (its `Debug` form is exhaustive, and f64s print in
/// shortest-round-trip form, so debug equality is value equality) — so
/// anything the projection drops can only influence results by changing
/// the setup, which changes the key.
fn unit_desc(
    workload: &Workload,
    opts: &SimOptions,
    cfg: &SystemConfig,
    setup: &SchemeSetup,
) -> String {
    format!(
        "fpb-run/v1|{workload:?}|{opts:?}|{}|{setup:?}",
        effective_config_desc(cfg, setup.sensitivity())
    )
}

/// Interns one unit, returning its index in `units`.
fn intern_unit(
    units: &mut Vec<SimUnit>,
    index_of: &mut BTreeMap<String, usize>,
    desc: String,
    rep: usize,
    setup: &SchemeSetup,
) -> usize {
    if let Some(&u) = index_of.get(&desc) {
        return u;
    }
    let u = units.len();
    index_of.insert(desc.clone(), u);
    units.push(SimUnit { desc, rep, setup: setup.clone() });
    u
}

/// Builds the unit plan for `pending` grid points: per point, a
/// baseline unit then a scheme unit, interned in pending order so unit
/// order is deterministic. With `dedup` off every (point, role) pair
/// gets a private unit — the historical one-run-per-simulation sweep
/// expressed in the same machinery. The `singleton` point (the
/// `--inject-panic` target) also gets private, salted units: its runs
/// must *execute* — a cache or dedup hit would satisfy the point
/// without ever reaching the injected panic, silently disarming the
/// crash-recovery hook — and the salt keys can never be cached.
#[allow(clippy::too_many_arguments)] // internal planner; the inputs are one sweep's full identity
fn plan_units(
    workload: &Workload,
    opts: &SimOptions,
    grid: &[(String, SystemConfig)],
    pending: &[usize],
    registry: &SchemeRegistry,
    scheme_spec: &SchemeSpec,
    baseline_spec: &SchemeSpec,
    dedup: bool,
    singleton: Option<usize>,
) -> UnitPlan {
    let mut units: Vec<SimUnit> = Vec::new();
    let mut index_of: BTreeMap<String, usize> = BTreeMap::new();
    let mut point_units = Vec::with_capacity(pending.len());
    for &gi in pending {
        let (_, cfg) = &grid[gi];
        let baseline_setup = build_spec(registry, baseline_spec, cfg);
        let scheme_setup = build_spec(registry, scheme_spec, cfg);
        let desc_for = |setup: &SchemeSetup, role: &str| -> String {
            if !dedup {
                format!("singleton|{gi}|{role}")
            } else if singleton == Some(gi) {
                format!("inject-panic|{gi}|{role}|{}", unit_desc(workload, opts, cfg, setup))
            } else {
                unit_desc(workload, opts, cfg, setup)
            }
        };
        let bd = desc_for(&baseline_setup, "baseline");
        let sd = desc_for(&scheme_setup, "scheme");
        let bu = intern_unit(&mut units, &mut index_of, bd, gi, &baseline_setup);
        let su = intern_unit(&mut units, &mut index_of, sd, gi, &scheme_setup);
        point_units.push((su, bu));
    }
    UnitPlan { units, point_units }
}

/// Runs the cartesian product of `axes` over `workload`, measuring the
/// scheme named by `scheme` against the one named by `baseline` (both
/// registry spec strings, rebuilt per configuration so budget-derived
/// fields track the swept config).
///
/// # Panics
///
/// Panics if `axes` is empty, either spec does not resolve in the
/// [`SchemeRegistry`], or any produced configuration is invalid.
///
/// # Examples
///
/// ```
/// use fpb_sim::sweep::{run_sweep, Axis};
/// use fpb_sim::SimOptions;
/// use fpb_trace::catalog;
/// use fpb_types::SystemConfig;
///
/// let wl = catalog::workload("cop_m").unwrap();
/// let points = run_sweep(
///     &wl,
///     SystemConfig::default(),
///     &[Axis::pt_dimm(&[466, 560])],
///     "fpb",
///     "dimm-chip",
///     &SimOptions::with_instructions(20_000),
/// );
/// assert_eq!(points.len(), 2);
/// assert!(points[0].label.contains("pt=466t"));
/// ```
pub fn run_sweep(
    workload: &Workload,
    base_cfg: SystemConfig,
    axes: &[Axis],
    scheme: &str,
    baseline: &str,
    opts: &SimOptions,
) -> Vec<SweepPoint> {
    run_sweep_jobs(workload, base_cfg, axes, scheme, baseline, opts, 1)
}

/// [`run_sweep`] fanned across up to `jobs` worker threads.
///
/// Every grid point is an independent, deterministic simulation (each run
/// seeds its own RNGs from the configuration), so the parallel sweep
/// returns results **bit-for-bit identical** to the serial one, in the
/// same odometer order — `jobs` only changes wall-clock time. With
/// `jobs <= 1` the grid runs inline on the caller's thread.
///
/// Four work-avoidance optimizations apply at any worker count, none of
/// which can change results (all are sharing/ordering-only; the
/// jobs-invariance and reuse-equivalence tests enforce this):
///
/// - Engine runs are semantically deduplicated: runs whose unit
///   descriptions collide (see [`ReuseOptions`]) simulate once per
///   equivalence class and share the metrics.
/// - Warmed cores are deduplicated: points whose configs produce the
///   same warm state (see [`warm_key`]'s inputs) share one warm set.
/// - Each worker carries a [`SimArena`], so the write path's pools are
///   primed once per worker instead of once per point.
/// - Units execute in descending estimated-cost order
///   ([`point_cost`] of the class representative), longest first, so a
///   slow unit claimed late cannot strand the pool past the end of the
///   grid.
///
/// # Panics
///
/// Panics if `axes` is empty, either scheme spec does not resolve, or any
/// produced configuration is invalid (the validation happens up front,
/// before any worker starts).
pub fn run_sweep_jobs(
    workload: &Workload,
    base_cfg: SystemConfig,
    axes: &[Axis],
    scheme: &str,
    baseline: &str,
    opts: &SimOptions,
    jobs: usize,
) -> Vec<SweepPoint> {
    run_sweep_jobs_reuse(
        workload,
        base_cfg,
        axes,
        scheme,
        baseline,
        opts,
        jobs,
        &ReuseOptions::default(),
    )
    .0
}

/// [`run_sweep_jobs`] with an explicit [`ReuseOptions`], reporting what
/// the reuse ladder saved. The returned points are **bit-for-bit
/// identical** for every `reuse` setting — dedup and the cache decide
/// which runs execute, never what any run produces.
///
/// # Panics
///
/// Same contract as [`run_sweep_jobs`].
#[allow(clippy::too_many_arguments)]
pub fn run_sweep_jobs_reuse(
    workload: &Workload,
    base_cfg: SystemConfig,
    axes: &[Axis],
    scheme: &str,
    baseline: &str,
    opts: &SimOptions,
    jobs: usize,
    reuse: &ReuseOptions,
) -> (Vec<SweepPoint>, ReuseStats) {
    assert!(!axes.is_empty(), "sweep needs at least one axis");
    // Resolve both specs once, up front: a typo fails before any
    // simulation work starts, and workers then rebuild per config from
    // the parsed form.
    let registry = SchemeRegistry::standard();
    let scheme_spec = parse_spec(scheme);
    let baseline_spec = parse_spec(baseline);
    // Semantic errors (e.g. `+reg` on a GCP-less base) are config-
    // independent, so one build against the base config proves every
    // per-point build below will succeed.
    build_spec(registry, &scheme_spec, &base_cfg);
    build_spec(registry, &baseline_spec, &base_cfg);
    // Enumerate the grid up front in odometer order; workers then claim
    // units off this list, and results keep the enumeration order.
    let grid = match enumerate_grid(&base_cfg, axes) {
        Ok(grid) => grid,
        // fpb-lint: allow(panic_freedom) — documented `# Panics` contract.
        Err(e) => panic!("{e}"),
    };
    let pending: Vec<usize> = (0..grid.len()).collect();
    let plan = plan_units(
        workload,
        opts,
        &grid,
        &pending,
        registry,
        &scheme_spec,
        &baseline_spec,
        reuse.dedup,
        None,
    );
    // Level 2: prefill units from the persistent cache (dedup-on only —
    // cache keys *are* unit keys, so without dedup there is nothing
    // sound to look up).
    let mut cache = match (&reuse.cache, reuse.dedup) {
        (Some(path), true) => Some(ResultCache::load(path)),
        _ => None,
    };
    let mut ready: Vec<Option<Metrics>> = plan
        .units
        .iter()
        .map(|u| cache.as_mut().and_then(|c| c.lookup(&u.desc)))
        .collect();
    let sim_units: Vec<usize> = (0..plan.units.len()).filter(|&u| ready[u].is_none()).collect();
    // Warm sets and costs over the units that actually simulate: the
    // scheduler sees class-collapsed work, and fully-cached warm keys
    // never pay a warm-up.
    let mut needed = vec![false; grid.len()];
    for &u in &sim_units {
        needed[plan.units[u].rep] = true;
    }
    let warm = warm_shared(workload, &grid, opts, jobs, &needed);
    let costs: Vec<u64> =
        sim_units.iter().map(|&u| point_cost(&grid[plan.units[u].rep].1, opts)).collect();
    let results = parallel_map_arena(
        &sim_units,
        jobs,
        Some(&costs),
        |_slot| SimArena::default(),
        |arena, _k, &u| {
            let unit = &plan.units[u];
            let (_, cfg) = &grid[unit.rep];
            let cores = &warm.sets[warm.of_point[unit.rep]];
            run_workload_warmed_arena(workload, cfg, &unit.setup, opts, cores, arena)
        },
    );
    let cache_hits = plan.units.len() - sim_units.len();
    for (k, &u) in sim_units.iter().enumerate() {
        if let Some(c) = cache.as_mut() {
            c.insert(plan.units[u].desc.clone(), results[k].clone());
        }
        ready[u] = Some(results[k].clone());
    }
    if let Some(c) = &cache {
        if let Err(e) = c.save() {
            // A failed save costs future warm starts, never correctness.
            eprintln!("fpb sweep: result cache save failed: {e} (continuing)");
        }
    }
    let points = pending
        .iter()
        .enumerate()
        .map(|(pi, &gi)| {
            let (su, bu) = plan.point_units[pi];
            match (&ready[su], &ready[bu]) {
                (Some(m), Some(b)) => SweepPoint {
                    label: format!("{} [{}]", grid[gi].0, plan.units[su].setup.label),
                    metrics: m.clone(),
                    baseline: b.clone(),
                },
                // Every unit is either cache-filled or simulated above;
                // an unresolved hole can only be a planner bug.
                // fpb-lint: allow(panic_freedom)
                _ => panic!("sweep unit unresolved for point {gi}"),
            }
        })
        .collect();
    let stats = ReuseStats {
        runs_total: 2 * grid.len(),
        runs_unique: plan.units.len(),
        cache_hits,
        simulated: sim_units.len(),
    };
    (points, stats)
}

/// Static cost estimate for one grid point: instruction budget scaled by
/// the line's cell count (wider lines mean more sampled cells, more
/// write rounds, and more token-planning work per write). Only the
/// *relative* order matters — the scheduler sorts by it, nothing sums it.
pub fn point_cost(cfg: &SystemConfig, opts: &SimOptions) -> u64 {
    opts.instructions_per_core
        .max(1)
        .saturating_mul(cfg.pcm.cells_per_line() as u64)
}

/// Fingerprint of everything that determines warmed-core state for a
/// grid point: the cache geometry, core count, seed, and the warm-up
/// options. Axes that only touch the power budget (`pt_dimm`, `e_gcp`)
/// leave this unchanged — on such grids a sweep needs one warm set per
/// distinct line geometry, not one per point.
fn warm_key(cfg: &SystemConfig, opts: &SimOptions) -> u64 {
    fingerprint64(&format!(
        "{:?}|{}|{}|{:?}|{}",
        cfg.cache, cfg.cores, cfg.seed, opts.warmup_accesses, opts.full_hierarchy
    ))
}

/// Deduplicated warm sets for a grid: `sets[of_point[i]]` is point `i`'s
/// warmed cores. Points whose `needed` flag is false (e.g. already
/// restored from a journal) don't force a warm-up; a key needed by no
/// point gets an empty placeholder set that is never read.
struct WarmSets {
    sets: Vec<Arc<Vec<CoreState>>>,
    of_point: Vec<usize>,
}

/// Builds the deduplicated warm sets, warming distinct keys in parallel
/// (warming is deterministic — see [`warm_cores`] — so sharing a set
/// across points is bit-for-bit identical to warming per point).
fn warm_shared(
    workload: &Workload,
    grid: &[(String, SystemConfig)],
    opts: &SimOptions,
    jobs: usize,
    needed: &[bool],
) -> WarmSets {
    let mut of_point = Vec::with_capacity(grid.len());
    // (key, representative grid index, any point needs it)
    let mut distinct: Vec<(u64, usize, bool)> = Vec::new();
    for (i, (_, cfg)) in grid.iter().enumerate() {
        let key = warm_key(cfg, opts);
        match distinct.iter().position(|&(k, _, _)| k == key) {
            Some(p) => {
                of_point.push(p);
                distinct[p].2 |= needed[i];
            }
            None => {
                of_point.push(distinct.len());
                distinct.push((key, i, needed[i]));
            }
        }
    }
    let sets = parallel_map_indexed(&distinct, jobs, |_, &(_, rep, need)| {
        if need {
            Arc::new(warm_cores(workload, &grid[rep].1, opts))
        } else {
            Arc::new(Vec::new())
        }
    });
    WarmSets { sets, of_point }
}

/// Parses a sweep scheme spec, upholding the sweep API's documented
/// `# Panics` contract: a malformed spec is a call-site bug and must
/// fail loudly before any simulation work starts.
fn parse_spec(s: &str) -> SchemeSpec {
    match s.parse() {
        Ok(spec) => spec,
        // fpb-lint: allow(panic_freedom) — documented `# Panics` contract.
        Err(e) => panic!("sweep scheme spec `{s}`: {e}"),
    }
}

/// Builds a parsed spec against one config, with the same documented
/// panic contract as [`parse_spec`].
fn build_spec(registry: &SchemeRegistry, spec: &SchemeSpec, cfg: &SystemConfig) -> SchemeSetup {
    match registry.build_spec(spec, cfg) {
        Ok(setup) => setup,
        // fpb-lint: allow(panic_freedom) — documented `# Panics` contract.
        Err(e) => panic!("sweep scheme spec `{}`: {e}", spec.render()),
    }
}

/// Why a supervised sweep could not start (or durably finish). Mid-grid
/// *point* failures are not errors — they land in the quarantine list of
/// a successful [`SweepRun`]; this type covers problems with the sweep
/// itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// The axes describe no grid (no axes, or an axis with no variants).
    Axes(String),
    /// A scheme spec failed to parse or build.
    Spec(String),
    /// A swept configuration failed validation.
    Config {
        /// Label of the offending grid point.
        label: String,
        /// The validation failure.
        detail: String,
    },
    /// The journal could not be created, resumed, or appended to — a
    /// durability failure aborts the sweep rather than silently running
    /// unjournaled.
    Journal(String),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Axes(detail) => write!(f, "sweep needs at least one axis: {detail}"),
            SweepError::Spec(detail) => write!(f, "sweep scheme spec {detail}"),
            SweepError::Config { label, detail } => {
                write!(f, "swept config invalid at `{label}`: {detail}")
            }
            SweepError::Journal(detail) => write!(f, "sweep journal: {detail}"),
        }
    }
}

impl std::error::Error for SweepError {}

/// Enumerates the cartesian product of `axes` over `base_cfg` in
/// odometer order (last axis fastest), validating every produced
/// configuration up front.
///
/// # Errors
///
/// [`SweepError::Axes`] for an empty grid, [`SweepError::Config`] for a
/// variant combination that fails [`SystemConfig::validate`].
pub fn enumerate_grid(
    base_cfg: &SystemConfig,
    axes: &[Axis],
) -> Result<Vec<(String, SystemConfig)>, SweepError> {
    if axes.is_empty() {
        return Err(SweepError::Axes("no axes given".to_string()));
    }
    if let Some(empty) = axes.iter().find(|a| a.variants.is_empty()) {
        return Err(SweepError::Axes(format!("axis `{}` has no variants", empty.name)));
    }
    let mut grid: Vec<(String, SystemConfig)> = Vec::new();
    let mut index = vec![0usize; axes.len()];
    'grid: loop {
        // Build this point's config and label.
        let mut cfg = base_cfg.clone();
        let mut parts = Vec::new();
        for (a, &i) in axes.iter().zip(&index) {
            let (name, f) = &a.variants[i];
            cfg = f(cfg);
            parts.push(format!("{}={}", a.name, name));
        }
        let label = parts.join(",");
        if let Err(e) = cfg.validate() {
            return Err(SweepError::Config { label, detail: e.to_string() });
        }
        grid.push((label, cfg));

        // Odometer increment.
        for d in (0..axes.len()).rev() {
            index[d] += 1;
            if index[d] < axes[d].variants.len() {
                continue 'grid;
            }
            index[d] = 0;
            if d == 0 {
                break 'grid;
            }
        }
    }
    Ok(grid)
}

/// Test hook: make one grid point panic on its first `attempts`
/// executions (pass `u32::MAX` for "always"). Exposed through
/// `fpb sweep --inject-panic` so crash-recovery behavior — quarantine,
/// journaling, resume — can be exercised end to end without patching the
/// simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PanicInjection {
    /// Grid index of the point to poison.
    pub point: usize,
    /// How many executions of that point panic before it succeeds.
    pub attempts: u32,
}

/// Everything a supervised sweep needs (the plain positional-argument
/// form of [`run_sweep_jobs`] plus the supervision/journal knobs).
pub struct SupervisedSweepRequest<'a> {
    /// Workload to sweep.
    pub workload: &'a Workload,
    /// Base configuration the axes transform.
    pub base_cfg: SystemConfig,
    /// Sweep axes (cartesian product, odometer order).
    pub axes: &'a [Axis],
    /// Scheme spec string under test.
    pub scheme: &'a str,
    /// Baseline scheme spec string.
    pub baseline: &'a str,
    /// Simulation options, shared by every point.
    pub opts: SimOptions,
    /// Worker count, retry budget, backoff, and deadline.
    pub policy: SupervisePolicy,
    /// Optional durable journal (fresh or resumed).
    pub journal: Option<JournalMode>,
    /// Cooperative cancellation handle (checked at point admission).
    pub cancel: CancelToken,
    /// Cancel automatically once this many points complete *in this
    /// run* (restored and cache-completed points don't count) — the
    /// deterministic stand-in for pressing Ctrl-C mid-sweep.
    pub cancel_after: Option<usize>,
    /// Crash-injection test hook.
    pub inject_panic: Option<PanicInjection>,
    /// Result-reuse ladder (semantic dedup + persistent cache). The
    /// journal always outranks both levels: restored points splice
    /// their journaled fragments and never consult the cache.
    pub reuse: ReuseOptions,
}

/// How one grid point ended up in a [`SweepRun`].
#[derive(Debug, Clone)]
pub enum PointState {
    /// Simulated in this run. Boxed: a [`SweepPoint`] carries full
    /// [`Metrics`] and dwarfs the other variants.
    Done(Box<SweepPoint>),
    /// Restored verbatim from a resumed journal (the stored JSON
    /// fragment; the metrics were produced by an earlier run).
    Restored {
        /// The journaled result fragment, spliced into reports as-is.
        fragment: String,
    },
    /// Quarantined (panicked every attempt, or timed out).
    Failed,
    /// Never ran: the sweep was cancelled first.
    Skipped,
}

/// One grid point of a supervised sweep: its label, terminal state, and
/// supervision outcome.
#[derive(Debug, Clone)]
pub struct SweepPointRecord {
    /// Grid index (odometer order).
    pub index: usize,
    /// Point label including the scheme suffix (`pt=466t [FPB]`).
    pub label: String,
    /// Result state.
    pub state: PointState,
    /// Supervision outcome ([`JobOutcome::Ok`] for restored points: they
    /// completed successfully, just in an earlier run).
    pub outcome: JobOutcome,
}

/// Display-ready derived stats for one completed point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointStats {
    /// Speedup over the baseline (Eq. 7).
    pub speedup: f64,
    /// Cycles per instruction.
    pub cpi: f64,
    /// Percent of cycles in write bursts.
    pub burst_pct: f64,
}

impl SweepPointRecord {
    /// Derived stats for the summary table; `None` for failed or skipped
    /// points. Works for restored points too, by extracting the integer
    /// counters from the stored fragment.
    pub fn stats(&self) -> Option<PointStats> {
        match &self.state {
            PointState::Done(p) => Some(PointStats {
                speedup: p.speedup(),
                cpi: p.metrics.cpi(),
                burst_pct: p.metrics.burst_fraction() * 100.0,
            }),
            PointState::Restored { fragment } => {
                let cycles = fragment_u64(fragment, Section::Metrics, "cycles")?;
                let instructions =
                    fragment_u64(fragment, Section::Metrics, "instructions_per_core")?;
                let burst = fragment_u64(fragment, Section::Metrics, "burst_cycles")?;
                let base_cycles = fragment_u64(fragment, Section::Baseline, "cycles")?;
                if cycles == 0 || instructions == 0 {
                    return None;
                }
                Some(PointStats {
                    speedup: base_cycles as f64 / cycles as f64,
                    cpi: cycles as f64 / instructions as f64,
                    burst_pct: burst as f64 / cycles as f64 * 100.0,
                })
            }
            PointState::Failed | PointState::Skipped => None,
        }
    }

    /// The point's result fragment: the journaled bytes for restored
    /// points, a fresh rendering for points simulated in this run, and
    /// `None` for failed/skipped points. Fresh renderings and journaled
    /// bytes are the same pure function of the metrics — the heart of
    /// the byte-identical-resume guarantee.
    pub fn fragment(&self) -> Option<String> {
        match &self.state {
            PointState::Done(p) => Some(render_fragment(self.index, &p.label, p)),
            PointState::Restored { fragment } => Some(fragment.clone()),
            PointState::Failed | PointState::Skipped => None,
        }
    }
}

/// Which half of a point fragment to read a counter from.
#[derive(Clone, Copy)]
enum Section {
    Metrics,
    Baseline,
}

/// Extracts one integer counter from a stored point fragment without a
/// JSON parser: the fragment format is fixed (rendered by
/// [`render_fragment`]), so a key search within the right section is
/// exact.
fn fragment_u64(fragment: &str, section: Section, field: &str) -> Option<u64> {
    let split = fragment.find("\"baseline\": ")?;
    let hay = match section {
        Section::Metrics => &fragment[..split],
        Section::Baseline => &fragment[split..],
    };
    let key = format!("\"{field}\": ");
    let start = hay.find(&key)? + key.len();
    let rest = &hay[start..];
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Renders the journal/report fragment for one completed point. Pure
/// function of `(index, label, metrics)`: journaled bytes and re-rendered
/// bytes always agree.
fn render_fragment(index: usize, label: &str, point: &SweepPoint) -> String {
    format!(
        "{{\"index\": {index}, \"label\": {}, \"metrics\": {}, \"baseline\": {}}}",
        json_string(label),
        point.metrics.to_json_inline(),
        point.baseline.to_json_inline()
    )
}

/// A finished supervised sweep: every grid point's record plus run-level
/// bookkeeping.
#[derive(Debug)]
pub struct SweepRun {
    /// Workload name.
    pub workload: String,
    /// Canonical rendering of the scheme spec.
    pub scheme: String,
    /// Canonical rendering of the baseline spec.
    pub baseline: String,
    /// Instruction budget per core.
    pub instructions: u64,
    /// One record per grid point, in odometer order.
    pub points: Vec<SweepPointRecord>,
    /// Points restored from a resumed journal (not simulated this run).
    pub restored: usize,
    /// Corrupt-tail journal lines dropped during resume.
    pub dropped_journal_lines: usize,
    /// True if the sweep stopped admitting points before the grid was
    /// exhausted.
    pub cancelled: bool,
    /// What the reuse ladder saved. Run-local bookkeeping, like
    /// `restored` — deliberately kept out of [`SweepRun::to_json`] so
    /// reuse settings cannot leak into the byte-identical document.
    pub reuse: ReuseStats,
}

impl SweepRun {
    /// Number of points whose outcome has the given class.
    pub fn count(&self, class: &str) -> usize {
        self.points.iter().filter(|p| p.outcome.class() == class).count()
    }

    /// Records of quarantined points, in grid order.
    pub fn quarantined(&self) -> Vec<&SweepPointRecord> {
        self.points.iter().filter(|p| p.outcome.quarantined()).collect()
    }

    /// True when every grid point has a result (none quarantined or
    /// skipped).
    pub fn complete(&self) -> bool {
        self.points.iter().all(|p| p.outcome.succeeded())
    }

    /// Deterministic JSON rendering (schema `fpb-sweep/v1`).
    ///
    /// Point results are spliced in as stored/rendered fragments, and
    /// restored points report the `ok` outcome they earned in the run
    /// that produced them — so a resumed sweep renders **byte-identical**
    /// JSON to an uninterrupted one. Run-local bookkeeping that *does*
    /// differ between the two (restored count, dropped journal lines) is
    /// deliberately kept out of this document.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        s.push_str("  \"schema\": \"fpb-sweep/v1\",\n");
        s.push_str(&format!("  \"workload\": {},\n", json_string(&self.workload)));
        s.push_str(&format!("  \"scheme\": {},\n", json_string(&self.scheme)));
        s.push_str(&format!("  \"baseline\": {},\n", json_string(&self.baseline)));
        s.push_str(&format!("  \"instructions_per_core\": {},\n", self.instructions));
        s.push_str(&format!("  \"points\": {},\n", self.points.len()));
        s.push_str(&format!("  \"cancelled\": {},\n", self.cancelled));
        s.push_str("  \"job_outcomes\": {\n");
        for class in ["ok", "retried", "panicked", "timed_out", "skipped"] {
            s.push_str(&format!("    \"{class}\": {},\n", self.count(class)));
        }
        s.push_str("    \"quarantined\": [");
        for (i, rec) in self.quarantined().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let detail = match &rec.outcome {
                JobOutcome::Panicked { message, .. } => message.clone(),
                JobOutcome::TimedOut { deadline_ms } => {
                    format!("deadline {deadline_ms}ms exceeded")
                }
                _ => String::new(),
            };
            s.push_str(&format!(
                "\n      {{\"index\": {}, \"label\": {}, \"class\": \"{}\", \"detail\": {}}}",
                rec.index,
                json_string(&rec.label),
                rec.outcome.class(),
                json_string(&detail)
            ));
        }
        if !self.quarantined().is_empty() {
            s.push_str("\n    ");
        }
        s.push_str("]\n  },\n");
        s.push_str("  \"point_metrics\": [");
        let mut first = true;
        for rec in &self.points {
            if let Some(frag) = rec.fragment() {
                if !first {
                    s.push(',');
                }
                first = false;
                s.push_str("\n    ");
                s.push_str(&frag);
            }
        }
        if !first {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

/// Canonical fingerprint of a sweep: every input that determines point
/// results, hashed so a journal can refuse to resume a *different*
/// sweep. (Labels pin the grid; the config debug form pins the base.)
fn sweep_fingerprint(
    workload: &Workload,
    scheme: &str,
    baseline: &str,
    opts: &SimOptions,
    base_cfg: &SystemConfig,
    grid: &[(String, SystemConfig)],
) -> u64 {
    let mut desc = format!("{}|{scheme}|{baseline}|{opts:?}|{base_cfg:?}", workload.name);
    for (label, _) in grid {
        desc.push('|');
        desc.push_str(label);
    }
    fingerprint64(&desc)
}

/// [`run_sweep_jobs`] under full supervision: panic isolation with
/// bounded retry and quarantine, optional per-point deadlines, optional
/// durable journaling with resume, and cooperative cancellation.
///
/// With a default policy, no journal, and no cancellation this computes
/// exactly what [`run_sweep_jobs`] computes (bit-for-bit, any worker
/// count) — it just survives what the plain sweep dies from.
///
/// # Errors
///
/// Errors cover the sweep *setup* (bad axes, bad specs, invalid configs,
/// journal I/O); individual point failures quarantine inside an `Ok`
/// run — check [`SweepRun::quarantined`].
pub fn run_sweep_supervised(req: SupervisedSweepRequest<'_>) -> Result<SweepRun, SweepError> {
    let registry = SchemeRegistry::standard();
    let scheme_spec: SchemeSpec = req
        .scheme
        .parse()
        .map_err(|e| SweepError::Spec(format!("`{}`: {e}", req.scheme)))?;
    let baseline_spec: SchemeSpec = req
        .baseline
        .parse()
        .map_err(|e| SweepError::Spec(format!("`{}`: {e}", req.baseline)))?;
    // One build against the base config proves every per-point build
    // will succeed (semantic spec errors are config-independent).
    let scheme_setup = registry
        .build_spec(&scheme_spec, &req.base_cfg)
        .map_err(|e| SweepError::Spec(format!("`{}`: {e}", req.scheme)))?;
    registry
        .build_spec(&baseline_spec, &req.base_cfg)
        .map_err(|e| SweepError::Spec(format!("`{}`: {e}", req.baseline)))?;
    let grid = enumerate_grid(&req.base_cfg, req.axes)?;
    let n = grid.len();
    let scheme_render = scheme_spec.render();
    let baseline_render = baseline_spec.render();

    // Attach the journal (if any) and restore completed points.
    let header = JournalHeader {
        fingerprint: sweep_fingerprint(
            req.workload,
            &scheme_render,
            &baseline_render,
            &req.opts,
            &req.base_cfg,
            &grid,
        ),
        points: n,
        meta: format!(
            "{} {scheme_render} vs {baseline_render} ({n} points)",
            req.workload.name
        ),
    };
    let journal_err = |e: JournalError| SweepError::Journal(e.to_string());
    let mut restored_frag: Vec<Option<String>> = vec![None; n];
    let mut dropped_journal_lines = 0usize;
    let mut writer: Option<JournalWriter> = None;
    match &req.journal {
        None => {}
        Some(JournalMode::Fresh(path)) => {
            writer = Some(JournalWriter::create(path, &header).map_err(journal_err)?);
        }
        Some(JournalMode::Resume(path)) => {
            let (w, contents) = JournalWriter::resume(path, &header).map_err(journal_err)?;
            dropped_journal_lines = contents.dropped_lines;
            for rec in contents.records {
                // Indices are validated against the header by the reader;
                // first occurrence wins on duplicates.
                let slot = &mut restored_frag[rec.index];
                if slot.is_none() {
                    *slot = Some(rec.payload);
                }
            }
            writer = Some(w);
        }
    }
    let restored = restored_frag.iter().filter(|f| f.is_some()).count();

    // Pending grid indices (everything not restored from the journal).
    // The journal outranks every reuse level: restored points splice
    // their stored fragments verbatim and never consult the cache.
    let pending: Vec<usize> = (0..n).filter(|&i| restored_frag[i].is_none()).collect();

    // Level 1: collapse the pending points' engine runs into units. The
    // `--inject-panic` point gets private salted units so its runs are
    // guaranteed to execute (and can never be satisfied — or poisoned —
    // through the cache).
    let plan = plan_units(
        req.workload,
        &req.opts,
        &grid,
        &pending,
        registry,
        &scheme_spec,
        &baseline_spec,
        req.reuse.dedup,
        req.inject_panic.map(|inj| inj.point),
    );

    // Level 2: prefill units from the persistent cache (dedup-on only —
    // cache keys *are* unit keys).
    let mut cache = match (&req.reuse.cache, req.reuse.dedup) {
        (Some(path), true) => Some(ResultCache::load(path)),
        _ => None,
    };
    let mut unit_results: Vec<Option<Metrics>> = plan
        .units
        .iter()
        .map(|u| cache.as_mut().and_then(|c| c.lookup(&u.desc)))
        .collect();
    let from_cache: Vec<bool> = unit_results.iter().map(|r| r.is_some()).collect();
    let cache_hits = from_cache.iter().filter(|&&b| b).count();

    // Points fully resolved from the cache complete before supervision
    // starts: journal them now, in grid order, so a crash in the
    // simulated remainder still resumes past them.
    let point_ready: Vec<bool> = plan
        .point_units
        .iter()
        .map(|&(su, bu)| unit_results[su].is_some() && unit_results[bu].is_some())
        .collect();
    if let Some(w) = writer.as_mut() {
        for (pi, &gi) in pending.iter().enumerate() {
            if !point_ready[pi] {
                continue;
            }
            let (su, bu) = plan.point_units[pi];
            if let (Some(sm), Some(bm)) = (&unit_results[su], &unit_results[bu]) {
                let label = format!("{} [{}]", grid[gi].0, plan.units[su].setup.label);
                let point =
                    SweepPoint { label: label.clone(), metrics: sm.clone(), baseline: bm.clone() };
                w.append_record(gi, &render_fragment(gi, &label, &point)).map_err(journal_err)?;
            }
        }
    }

    // Per-point count of units still to simulate, and the reverse map
    // from a unit to the point ordinals waiting on it. Both drive
    // completion tracking: a point is done when its last unit lands.
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); plan.units.len()];
    let mut remaining: Vec<usize> = vec![0; pending.len()];
    for (pi, &(su, bu)) in plan.point_units.iter().enumerate() {
        if point_ready[pi] {
            continue;
        }
        let mut add = |u: usize| {
            if unit_results[u].is_none() {
                members[u].push(pi);
                remaining[pi] += 1;
            }
        };
        add(bu);
        if su != bu {
            add(su);
        }
    }

    // Units to dispatch, in interning order (deterministic).
    let sim_unit_ids: Vec<usize> =
        (0..plan.units.len()).filter(|&u| unit_results[u].is_none()).collect();
    let sim_jobs: Vec<SimJob> = sim_unit_ids
        .iter()
        .map(|&u| {
            let unit = &plan.units[u];
            SimJob {
                unit: u,
                rep: unit.rep,
                label: grid[unit.rep].0.clone(),
                cfg: grid[unit.rep].1.clone(),
                setup: unit.setup.clone(),
            }
        })
        .collect();

    // Warm-set dedup over the units that actually simulate — a key
    // whose every point was restored or cache-filled never pays a
    // warm-up.
    let mut needed = vec![false; n];
    for &u in &sim_unit_ids {
        needed[plan.units[u].rep] = true;
    }
    let warm = Arc::new(warm_shared(req.workload, &grid, &req.opts, req.policy.jobs, &needed));

    // Execution costs: static estimate, refined by measured cycle counts
    // from journal-restored points sharing the same warm key (same line
    // geometry ⇒ comparable per-run work; the restored figure covers a
    // scheme+baseline pair, a uniform 2× of a unit, so relative order
    // survives). The schedule orders units descending by cost; it cannot
    // change results or the report order, both keyed by grid index.
    let mut cycles_sum = vec![0u64; warm.sets.len()];
    let mut cycles_cnt = vec![0u64; warm.sets.len()];
    for (i, frag) in restored_frag.iter().enumerate() {
        let Some(frag) = frag else { continue };
        if let (Some(c), Some(b)) = (
            fragment_u64(frag, Section::Metrics, "cycles"),
            fragment_u64(frag, Section::Baseline, "cycles"),
        ) {
            let k = warm.of_point[i];
            cycles_sum[k] = cycles_sum[k].saturating_add(c.saturating_add(b));
            cycles_cnt[k] += 1;
        }
    }
    let unit_costs: Vec<u64> = sim_unit_ids
        .iter()
        .map(|&u| {
            let rep = plan.units[u].rep;
            let k = warm.of_point[rep];
            cycles_sum[k]
                .checked_div(cycles_cnt[k])
                .unwrap_or_else(|| point_cost(&grid[rep].1, &req.opts))
        })
        .collect();
    let schedule = crate::exec::schedule_by_cost(&unit_costs);

    let workload = req.workload.clone();
    let opts = req.opts;
    let inject = req.inject_panic;
    let inject_runs = Arc::new(AtomicU32::new(0));
    let cancel_limit = req.cancel_after;
    let job_cancel = req.cancel.clone();
    // Worker-side completion tracker behind --cancel-after: cancellation
    // trips at the moment the Nth pending point's *last* unit finishes —
    // deterministic with one worker, best-effort with more. Restored and
    // cache-completed points never count.
    let tracker = Arc::new(Mutex::new((remaining.clone(), 0usize)));
    let track_members: Arc<Vec<Vec<usize>>> = Arc::new(members);
    // Per-worker arenas, checkout-stack style: the supervisor shares one
    // `Fn` across workers, so arenas are popped for a run and pushed
    // back after. A panicked attempt simply drops its arena (the next
    // checkout starts fresh) — retry-safety is untouched, and arena
    // reuse is results-neutral by construction (see `SimArena`).
    let arenas: Arc<Mutex<Vec<SimArena>>> = Arc::new(Mutex::new(Vec::new()));
    let job_warm = Arc::clone(&warm);
    let job_members = Arc::clone(&track_members);
    let job = move |_slot: usize, j: &SimJob| -> (usize, Metrics) {
        if let Some(inj) = inject {
            if j.rep == inj.point && inject_runs.fetch_add(1, Ordering::SeqCst) < inj.attempts {
                // The documented `--inject-panic` crash-recovery hook.
                // Only the poisoned point's own (salted, private) units
                // can reach here — no shared unit has it as rep.
                // fpb-lint: allow(panic_freedom)
                panic!("injected panic at point {} ({})", j.rep, j.label);
            }
        }
        let cores = &job_warm.sets[job_warm.of_point[j.rep]];
        let mut arena = match arenas.lock() {
            Ok(mut stack) => stack.pop().unwrap_or_default(),
            Err(_) => SimArena::default(),
        };
        let m = run_workload_warmed_arena(&workload, &j.cfg, &j.setup, &opts, cores, &mut arena);
        if let Ok(mut stack) = arenas.lock() {
            stack.push(arena);
        }
        if cancel_limit.is_some() {
            if let Ok(mut t) = tracker.lock() {
                let (left, completed) = &mut *t;
                for &pi in &job_members[j.unit] {
                    if left[pi] > 0 {
                        left[pi] -= 1;
                        if left[pi] == 0 {
                            *completed += 1;
                        }
                    }
                }
                if cancel_limit.is_some_and(|limit| *completed >= limit) {
                    job_cancel.cancel();
                }
            }
        }
        (j.unit, m)
    };

    // The collector thread assembles per-point fragments as their last
    // unit lands and journals them before the point is considered
    // durable; a journal write failure cancels the sweep (running
    // unjournaled would betray the --journal contract).
    let mut journal_failure: Option<JournalError> = None;
    let cancel = req.cancel.clone();
    let mut remaining_c = remaining;
    let collect_members = Arc::clone(&track_members);
    let report = supervise_map_ordered(
        sim_jobs,
        &req.policy,
        &req.cancel,
        Some(schedule),
        job,
        |_slot, (unit, m): &(usize, Metrics)| {
            unit_results[*unit] = Some(m.clone());
            if journal_failure.is_some() {
                return;
            }
            let Some(w) = writer.as_mut() else { return };
            for &pi in &collect_members[*unit] {
                if remaining_c[pi] == 0 {
                    continue;
                }
                remaining_c[pi] -= 1;
                if remaining_c[pi] > 0 {
                    continue;
                }
                let gi = pending[pi];
                let (su, bu) = plan.point_units[pi];
                if let (Some(sm), Some(bm)) = (&unit_results[su], &unit_results[bu]) {
                    let label = format!("{} [{}]", grid[gi].0, plan.units[su].setup.label);
                    let point = SweepPoint {
                        label: label.clone(),
                        metrics: sm.clone(),
                        baseline: bm.clone(),
                    };
                    if let Err(e) = w.append_record(gi, &render_fragment(gi, &label, &point)) {
                        journal_failure = Some(e);
                        cancel.cancel();
                        return;
                    }
                }
            }
        },
    );
    if let Some(e) = journal_failure {
        return Err(journal_err(e));
    }

    // Merge freshly simulated units into the cache and persist it.
    // Inject-salted units are skipped outright; everything else keyed a
    // real run.
    if let Some(c) = cache.as_mut() {
        for (u, unit) in plan.units.iter().enumerate() {
            if from_cache[u] || req.inject_panic.is_some_and(|inj| unit.rep == inj.point) {
                continue;
            }
            if let Some(m) = &unit_results[u] {
                c.insert(unit.desc.clone(), m.clone());
            }
        }
        if let Err(e) = c.save() {
            // A failed save costs future warm starts, never correctness.
            eprintln!("fpb sweep: result cache save failed: {e} (continuing)");
        }
    }

    // Per-unit outcomes: cache-filled units count as Ok; dispatched
    // units take their supervision outcome.
    let mut unit_outcomes: Vec<JobOutcome> = vec![JobOutcome::Ok; plan.units.len()];
    for (k, outcome) in report.outcomes.into_iter().enumerate() {
        unit_outcomes[sim_unit_ids[k]] = outcome;
    }

    // Assemble records in grid order: restored points first, then each
    // pending point from its units — metrics spliced from the shared
    // unit results, outcome merged across the units it needed.
    let mut records: Vec<SweepPointRecord> = grid
        .iter()
        .enumerate()
        .map(|(i, (label, _))| SweepPointRecord {
            index: i,
            label: format!("{label} [{}]", scheme_setup.label),
            state: match restored_frag[i].take() {
                Some(fragment) => PointState::Restored { fragment },
                None => PointState::Skipped,
            },
            outcome: JobOutcome::Ok,
        })
        .collect();
    for (pi, &gi) in pending.iter().enumerate() {
        let (su, bu) = plan.point_units[pi];
        let outcome = if su == bu {
            unit_outcomes[su].clone()
        } else {
            merge_outcomes(unit_outcomes[su].clone(), unit_outcomes[bu].clone())
        };
        let label = format!("{} [{}]", grid[gi].0, plan.units[su].setup.label);
        let state = match (&unit_results[su], &unit_results[bu]) {
            (Some(sm), Some(bm)) => PointState::Done(Box::new(SweepPoint {
                label: label.clone(),
                metrics: sm.clone(),
                baseline: bm.clone(),
            })),
            _ if outcome.quarantined() => PointState::Failed,
            _ => PointState::Skipped,
        };
        records[gi] = SweepPointRecord { index: gi, label, state, outcome };
    }

    Ok(SweepRun {
        workload: req.workload.name.to_string(),
        scheme: scheme_render,
        baseline: baseline_render,
        instructions: req.opts.instructions_per_core,
        points: records,
        restored,
        dropped_journal_lines,
        cancelled: report.cancelled,
        reuse: ReuseStats {
            runs_total: 2 * pending.len(),
            runs_unique: plan.units.len(),
            cache_hits,
            simulated: sim_unit_ids.len(),
        },
    })
}

/// One supervised engine run: a deduplicated unit plus everything the
/// worker needs to execute it without touching shared sweep state.
struct SimJob {
    /// Unit index into the sweep's [`UnitPlan`].
    unit: usize,
    /// Representative grid index (drives warm-set and inject lookups).
    rep: usize,
    /// Representative's grid label (for the injected-panic message).
    label: String,
    /// Representative's configuration.
    cfg: SystemConfig,
    /// Setup to run.
    setup: SchemeSetup,
}

/// Terminal outcome of a point from the outcomes of the units it
/// waited on: the worse one wins (quarantine > skip > retry > ok), and
/// two retried units report the larger attempt count.
fn merge_outcomes(a: JobOutcome, b: JobOutcome) -> JobOutcome {
    fn rank(o: &JobOutcome) -> u32 {
        match o {
            JobOutcome::Panicked { .. } => 4,
            JobOutcome::TimedOut { .. } => 3,
            JobOutcome::Skipped => 2,
            JobOutcome::Retried { .. } => 1,
            JobOutcome::Ok => 0,
        }
    }
    match (&a, &b) {
        (JobOutcome::Retried { attempts: x }, JobOutcome::Retried { attempts: y }) => {
            JobOutcome::Retried { attempts: (*x).max(*y) }
        }
        _ if rank(&b) > rank(&a) => b,
        _ => a,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use fpb_trace::catalog;

    fn opts() -> SimOptions {
        SimOptions::with_instructions(15_000)
    }

    #[test]
    fn cartesian_product_order_and_size() {
        let wl = catalog::workload("cop_m").expect("workload");
        let points = run_sweep(
            &wl,
            SystemConfig::default(),
            &[
                Axis::pt_dimm(&[466, 560]),
                Axis::e_gcp(&[0.7, 0.5]),
            ],
            "fpb",
            "dimm-chip",
            &opts(),
        );
        assert_eq!(points.len(), 4);
        assert!(points[0].label.starts_with("pt=466t,egcp=0.7"));
        assert!(points[3].label.starts_with("pt=560t,egcp=0.5"));
        for p in &points {
            assert!(p.speedup() > 0.0);
            assert!(p.label.contains("[FPB]"));
        }
    }

    #[test]
    fn axes_apply_their_configs() {
        let wl = catalog::workload("xal_m").expect("workload");
        let points = run_sweep(
            &wl,
            SystemConfig::default(),
            &[Axis::line_bytes(&[64, 256])],
            "ideal",
            "ideal",
            &opts(),
        );
        assert_eq!(points.len(), 2);
        // Identical scheme and baseline: speedup exactly 1.
        for p in &points {
            assert!((p.speedup() - 1.0).abs() < 1e-12, "{}", p.label);
        }
    }

    #[test]
    fn llc_axis_changes_traffic() {
        let wl = catalog::workload("ast_m").expect("workload");
        let points = run_sweep(
            &wl,
            SystemConfig::default(),
            &[Axis::llc_mib(&[4, 32])],
            "dimm-chip",
            "dimm-chip",
            &opts(),
        );
        // A tiny LLC must produce more PCM reads than the baseline 32 M.
        assert!(
            points[0].metrics.pcm_reads > points[1].metrics.pcm_reads,
            "4M {} vs 32M {}",
            points[0].metrics.pcm_reads,
            points[1].metrics.pcm_reads
        );
    }

    #[test]
    #[should_panic(expected = "at least one axis")]
    fn empty_axes_panic() {
        let wl = catalog::workload("cop_m").expect("workload");
        let _ = run_sweep(
            &wl,
            SystemConfig::default(),
            &[],
            "fpb",
            "dimm-chip",
            &opts(),
        );
    }

    #[test]
    fn enumerate_grid_rejects_degenerate_axes() {
        let cfg = SystemConfig::default();
        assert!(matches!(enumerate_grid(&cfg, &[]), Err(SweepError::Axes(_))));
        let hollow = Axis { name: "pt", variants: Vec::new() };
        let err = enumerate_grid(&cfg, &[hollow]).unwrap_err();
        assert!(err.to_string().contains("axis `pt` has no variants"), "{err}");
    }

    #[test]
    fn enumerate_grid_matches_sweep_order() {
        let cfg = SystemConfig::default();
        let grid = enumerate_grid(
            &cfg,
            &[Axis::pt_dimm(&[466, 560]), Axis::e_gcp(&[0.7, 0.5])],
        )
        .unwrap();
        let labels: Vec<&str> = grid.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(
            labels,
            ["pt=466t,egcp=0.7", "pt=466t,egcp=0.5", "pt=560t,egcp=0.7", "pt=560t,egcp=0.5"]
        );
    }

    #[test]
    fn fragment_round_trips_display_stats() {
        let point = SweepPoint {
            label: "pt=466t [FPB]".to_string(),
            metrics: Metrics {
                cycles: 2_000,
                instructions_per_core: 1_000,
                burst_cycles: 500,
                ..Metrics::default()
            },
            baseline: Metrics {
                cycles: 3_000,
                instructions_per_core: 1_000,
                ..Metrics::default()
            },
        };
        let frag = render_fragment(4, &point.label, &point);
        assert!(frag.starts_with("{\"index\": 4, \"label\": \"pt=466t [FPB]\", \"metrics\": {"));
        assert!(!frag.contains('\n'), "fragments must be single-line: {frag}");

        // A Done record and a Restored record over the same data must
        // derive the same table stats and re-render the same fragment.
        let done = SweepPointRecord {
            index: 4,
            label: point.label.clone(),
            state: PointState::Done(Box::new(point)),
            outcome: JobOutcome::Ok,
        };
        let restored = SweepPointRecord {
            index: 4,
            label: done.label.clone(),
            state: PointState::Restored { fragment: frag.clone() },
            outcome: JobOutcome::Ok,
        };
        assert_eq!(done.fragment().unwrap(), frag);
        assert_eq!(restored.fragment().unwrap(), frag);
        let (a, b) = (done.stats().unwrap(), restored.stats().unwrap());
        assert!((a.speedup - b.speedup).abs() < 1e-12);
        assert!((a.cpi - b.cpi).abs() < 1e-12);
        assert!((a.burst_pct - b.burst_pct).abs() < 1e-12);
        assert!((b.speedup - 1.5).abs() < 1e-12);
        assert!((b.cpi - 2.0).abs() < 1e-12);
        assert!((b.burst_pct - 25.0).abs() < 1e-12);
    }

    #[test]
    fn fragment_u64_reads_the_right_section() {
        let frag = "{\"index\": 1, \"label\": \"x\", \"metrics\": {\"cycles\": 10, \
                    \"burst_cycles\": 3}, \"baseline\": {\"cycles\": 40, \"burst_cycles\": 7}}";
        assert_eq!(fragment_u64(frag, Section::Metrics, "cycles"), Some(10));
        assert_eq!(fragment_u64(frag, Section::Baseline, "cycles"), Some(40));
        assert_eq!(fragment_u64(frag, Section::Metrics, "burst_cycles"), Some(3));
        assert_eq!(fragment_u64(frag, Section::Baseline, "burst_cycles"), Some(7));
        assert_eq!(fragment_u64(frag, Section::Metrics, "absent"), None);
        assert_eq!(fragment_u64("no baseline here", Section::Metrics, "cycles"), None);
    }

    #[test]
    fn sweep_fingerprint_tracks_every_input() {
        let wl = catalog::workload("cop_m").expect("workload");
        let wl2 = catalog::workload("mcf_m").expect("workload");
        let cfg = SystemConfig::default();
        let grid = enumerate_grid(&cfg, &[Axis::pt_dimm(&[466, 560])]).unwrap();
        let base = sweep_fingerprint(&wl, "fpb", "dimm-chip", &opts(), &cfg, &grid);
        assert_eq!(base, sweep_fingerprint(&wl, "fpb", "dimm-chip", &opts(), &cfg, &grid));
        assert_ne!(base, sweep_fingerprint(&wl2, "fpb", "dimm-chip", &opts(), &cfg, &grid));
        assert_ne!(base, sweep_fingerprint(&wl, "gcp", "dimm-chip", &opts(), &cfg, &grid));
        let other_opts = SimOptions::with_instructions(999);
        assert_ne!(base, sweep_fingerprint(&wl, "fpb", "dimm-chip", &other_opts, &cfg, &grid));
        let bigger = enumerate_grid(&cfg, &[Axis::pt_dimm(&[466, 560, 512])]).unwrap();
        assert_ne!(base, sweep_fingerprint(&wl, "fpb", "dimm-chip", &opts(), &cfg, &bigger));
    }

    #[test]
    fn reuse_never_changes_points_and_collapses_baselines() {
        let wl = catalog::workload("cop_m").expect("workload");
        let axes = || [Axis::pt_dimm(&[466, 560]), Axis::e_gcp(&[0.5, 0.9])];
        let (off, s_off) = run_sweep_jobs_reuse(
            &wl,
            SystemConfig::default(),
            &axes(),
            "fpb",
            "dimm-chip",
            &opts(),
            2,
            &ReuseOptions::disabled(),
        );
        let (on, s_on) = run_sweep_jobs_reuse(
            &wl,
            SystemConfig::default(),
            &axes(),
            "fpb",
            "dimm-chip",
            &opts(),
            2,
            &ReuseOptions::default(),
        );
        assert_eq!(off.len(), on.len());
        for (a, b) in off.iter().zip(&on) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.metrics, b.metrics, "{}", a.label);
            assert_eq!(a.baseline, b.baseline, "{}", a.label);
        }
        // Dedup off: every point pays both runs.
        assert_eq!((s_off.runs_total, s_off.runs_unique, s_off.simulated), (8, 8, 8));
        // Dedup on: the power-blind baseline collapses along the e-gcp
        // axis; fpb stays distinct per point.
        assert_eq!(s_on.runs_total, 8);
        assert!(
            s_on.runs_unique < s_on.runs_total,
            "expected baseline collapse, got {s_on:?}"
        );
        assert_eq!(s_on.simulated, s_on.runs_unique);
        assert!(s_on.dedup_ratio() > 1.0);
    }

    #[test]
    fn persistent_cache_round_trips_points() {
        let wl = catalog::workload("cop_m").expect("workload");
        let path = std::env::temp_dir().join("fpb-sweep-unit-cache.v1");
        std::fs::remove_file(&path).ok();
        let reuse = ReuseOptions { dedup: true, cache: Some(path.clone()) };
        let axes = || [Axis::pt_dimm(&[466, 560])];
        let (cold, s_cold) = run_sweep_jobs_reuse(
            &wl,
            SystemConfig::default(),
            &axes(),
            "fpb",
            "dimm-chip",
            &opts(),
            1,
            &reuse,
        );
        assert_eq!(s_cold.cache_hits, 0);
        assert_eq!(s_cold.simulated, s_cold.runs_unique);
        let (warm, s_warm) = run_sweep_jobs_reuse(
            &wl,
            SystemConfig::default(),
            &axes(),
            "fpb",
            "dimm-chip",
            &opts(),
            1,
            &reuse,
        );
        assert_eq!(s_warm.cache_hits, s_warm.runs_unique, "{s_warm:?}");
        assert_eq!(s_warm.simulated, 0, "warm run must not simulate");
        for (a, b) in cold.iter().zip(&warm) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.metrics, b.metrics, "{}", a.label);
            assert_eq!(a.baseline, b.baseline, "{}", a.label);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn merge_outcomes_ranks_worst_first() {
        use JobOutcome::*;
        assert_eq!(merge_outcomes(Ok, Ok), Ok);
        assert_eq!(merge_outcomes(Ok, Retried { attempts: 2 }), Retried { attempts: 2 });
        assert_eq!(
            merge_outcomes(Retried { attempts: 2 }, Retried { attempts: 3 }),
            Retried { attempts: 3 }
        );
        assert_eq!(merge_outcomes(Retried { attempts: 2 }, Skipped), Skipped);
        assert_eq!(
            merge_outcomes(Skipped, Panicked { attempts: 1, message: "boom".into() }),
            Panicked { attempts: 1, message: "boom".into() }
        );
        assert_eq!(
            merge_outcomes(TimedOut { deadline_ms: 5 }, Ok),
            TimedOut { deadline_ms: 5 }
        );
    }

    #[test]
    fn supervised_json_shape_without_running_points() {
        let run = SweepRun {
            workload: "cop_m".to_string(),
            scheme: "fpb".to_string(),
            baseline: "dimm-chip".to_string(),
            instructions: 1_000,
            points: vec![
                SweepPointRecord {
                    index: 0,
                    label: "pt=466t [FPB]".to_string(),
                    state: PointState::Restored {
                        fragment: "{\"index\": 0, \"label\": \"pt=466t [FPB]\", \"metrics\": {}, \"baseline\": {}}".to_string(),
                    },
                    outcome: JobOutcome::Ok,
                },
                SweepPointRecord {
                    index: 1,
                    label: "pt=560t [FPB]".to_string(),
                    state: PointState::Failed,
                    outcome: JobOutcome::Panicked { attempts: 2, message: "boom".to_string() },
                },
                SweepPointRecord {
                    index: 2,
                    label: "pt=512t [FPB]".to_string(),
                    state: PointState::Skipped,
                    outcome: JobOutcome::Skipped,
                },
            ],
            restored: 1,
            dropped_journal_lines: 0,
            cancelled: true,
            reuse: ReuseStats::default(),
        };
        let json = run.to_json();
        assert!(json.contains("\"schema\": \"fpb-sweep/v1\""));
        assert!(json.contains("\"ok\": 1,"));
        assert!(json.contains("\"panicked\": 1,"));
        assert!(json.contains("\"skipped\": 1,"));
        assert!(json.contains("\"cancelled\": true"));
        assert!(json.contains("\"class\": \"panicked\", \"detail\": \"boom\""));
        assert!(!json.contains("restored"), "run-local bookkeeping stays out of the JSON");
        assert_eq!(run.count("ok"), 1);
        assert_eq!(run.quarantined().len(), 1);
        assert!(!run.complete());
    }
}
