//! The cycle-driven simulation engine.
//!
//! Event-driven replay: time jumps between the earliest pending events
//! (bank completions and core arrivals). Between events the engine runs a
//! scheduling pass implementing the paper's controller policy: reads
//! first; writes only when no read is waiting; a write burst — which
//! blocks reads — whenever the write queue fills (§5.1); token admission
//! through the [`PowerManager`] for every write iteration.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use fpb_core::{PowerManager, WriteId};
use fpb_pcm::{
    ChangeSet, DimmGeometry, EnduranceTracker, FaultInjector, IntraLineWearLeveler,
    IterationSampler, IterKind, LineWrite, WriteBufferPool,
};
use fpb_types::{MlcLevelModel, MlcWriteModel, SimError};
use fpb_trace::Workload;
use fpb_types::{Cycles, CoreId, LineAddr, SimRng, SystemConfig};

use crate::bank::BankState;
use crate::frontend::CoreState;
use crate::metrics::Metrics;
use crate::request::{ReadTask, RoundSplitter, WriteTask};
use crate::setup::SchemeSetup;

/// Run-scale options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOptions {
    /// Instructions each core retires before the run ends. The paper runs
    /// 1 B instructions; the benches here default to a reduced,
    /// shape-preserving budget.
    pub instructions_per_core: u64,
    /// Untimed LLC warm-up generator operations per core before
    /// measurement, on top of the deterministic prefill and hot-tier walk
    /// (`None` = automatic).
    pub warmup_accesses: Option<u64>,
    /// Run the full L1/L2/L3 cache stack per core instead of the
    /// LLC-level front end (slower; for full-fidelity studies).
    pub full_hierarchy: bool,
    /// Drift-scrub period in cycles: every period the controller issues
    /// background scrub reads over recently written lines (see
    /// [`fpb_pcm::DriftModel::scrub_interval_secs`] for deriving a period
    /// from a drift model). `None` disables scrubbing. Realistic periods
    /// are enormous (minutes); small values exist for stress testing.
    pub scrub_period_cycles: Option<u64>,
    /// Run the power manager's token-conservation auditor after every
    /// grant and release: violations are counted in
    /// [`Metrics::faults`]`.audit_violations`. Off by default (the audit
    /// re-sums every outstanding grant, which costs time).
    pub audit_ledger: bool,
    /// Use the original O(banks + cores) scan stepper instead of the
    /// event heap. The two are bit-for-bit identical; the scan survives
    /// as the differential-testing reference and the `fpb bench`
    /// pre-optimization baseline.
    pub reference_stepper: bool,
    /// Allocate fresh write buffers per line write instead of recycling
    /// through the [`WriteBufferPool`]. Bit-for-bit identical to the
    /// pooled path; kept as the differential-testing reference.
    pub reference_alloc: bool,
    /// Sample changed bits with the original per-bit Bernoulli loop
    /// instead of the word-level mask sampler. The two samplers are
    /// distributionally equivalent but consume the RNG differently, so
    /// this flag (unlike the other two) changes simulated results; it
    /// exists for calibration comparisons and the pre-optimization
    /// benchmark baseline.
    pub reference_sampler: bool,
}

impl SimOptions {
    /// Creates options with the given instruction budget and automatic
    /// warm-up.
    pub fn with_instructions(instructions_per_core: u64) -> Self {
        SimOptions {
            instructions_per_core,
            warmup_accesses: None,
            full_hierarchy: false,
            scrub_period_cycles: None,
            audit_ledger: false,
            reference_stepper: false,
            reference_alloc: false,
            reference_sampler: false,
        }
    }

    /// All three reference knobs at once: the pre-optimization write
    /// path (per-bit sampling, fresh allocation, scan stepper), used by
    /// `fpb bench` as the speedup baseline.
    pub fn reference_path(mut self) -> Self {
        self.reference_stepper = true;
        self.reference_alloc = true;
        self.reference_sampler = true;
        self
    }
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions::with_instructions(1_000_000)
    }
}

/// One PCM bank plus its write-pausing parking spot.
#[derive(Debug)]
struct Bank {
    state: BankState,
    /// A write parked by write pausing so reads can be served.
    parked: Option<WriteTask>,
}

/// The simulated system: cores, controller, banks, power manager.
///
/// Use [`run_workload`] unless you need step-level control.
#[derive(Debug)]
pub struct System {
    cfg: SystemConfig,
    setup: SchemeSetup,
    cores: Vec<CoreState>,
    banks: Vec<Bank>,
    rdq: VecDeque<ReadTask>,
    pending_reads: VecDeque<ReadTask>,
    wrq: VecDeque<WriteTask>,
    overflow: VecDeque<WriteTask>,
    power: PowerManager,
    geom: DimmGeometry,
    sampler: IterationSampler,
    wear: Option<IntraLineWearLeveler>,
    data_rng: SimRng,
    write_rng: SimRng,
    now: Cycles,
    burst: bool,
    bus_free_at: Cycles,
    next_write_id: u64,
    target_instr: u64,
    cap_total: Option<u64>,
    cap_chip: Option<u64>,
    endurance: EnduranceTracker,
    /// Ring of recently written lines, the scrub candidates (drifting
    /// intermediate levels live where writes happened).
    recent_writes: VecDeque<LineAddr>,
    scrub_period: Option<u64>,
    next_scrub_at: Cycles,
    /// Fault injector, present only when any fault knob is nonzero — a
    /// fully disabled fault config leaves the engine bit-for-bit identical
    /// to a build without the fault subsystem.
    faults: Option<FaultInjector>,
    /// Reusable round-splitting buffers (every dirty eviction is split;
    /// the grouping scratch must not be reallocated per write).
    splitter: RoundSplitter,
    /// Free-list of write-buffer storage recycled from completed writes
    /// (the write path allocates nothing once the pool is primed).
    pool: WriteBufferPool,
    /// Pending-event min-heap keyed by `(time, source)`, where source ids
    /// `0..banks` are banks and `banks..banks+cores` are cores. Entries
    /// are lazily invalidated: one is live only while its source still
    /// schedules an event at exactly that time.
    events: BinaryHeap<Reverse<(Cycles, u32)>>,
    /// Scratch for the sources due in one step (sorted + deduped so the
    /// processing order matches the reference scan exactly).
    due_scratch: Vec<u32>,
    /// Scratch for bank events that appear at exactly `now` while a step
    /// is already processing (deferred to the next step, as the scan
    /// defers them).
    deferred_scratch: Vec<(Cycles, u32)>,
    reference_stepper: bool,
    reference_alloc: bool,
    reference_sampler: bool,
    /// When the current brownout window began (drives degraded mode).
    brownout_since: Option<Cycles>,
    /// Degraded mode: brownout persisted past the configured threshold, so
    /// new writes are issued in SLC fallback until the window ends.
    degraded: bool,
    metrics: Metrics,
}

/// Sentinel "core" index marking a background scrub read (no core to
/// wake on completion).
const SCRUB_CORE: usize = usize::MAX;

/// Simulates `workload` on `cfg` under `setup` and returns the metrics.
///
/// Deterministic: the same arguments always produce the same result.
///
/// # Examples
///
/// ```
/// use fpb_sim::{run_workload, SchemeSetup, SimOptions};
/// use fpb_trace::catalog;
/// use fpb_types::SystemConfig;
///
/// let cfg = SystemConfig::default();
/// let wl = catalog::workload("xal_m").unwrap();
/// let opts = SimOptions::with_instructions(30_000);
/// let m = run_workload(&wl, &cfg, &SchemeSetup::dimm_chip(&cfg), &opts);
/// assert_eq!(m.instructions_per_core, 30_000);
/// ```
///
/// # Panics
///
/// Panics if the configuration is invalid.
pub fn run_workload(
    workload: &Workload,
    cfg: &SystemConfig,
    setup: &SchemeSetup,
    opts: &SimOptions,
) -> Metrics {
    System::new(workload, cfg, setup, opts).run()
}

/// Like [`run_workload`] but returning engine failures (scheduling
/// deadlocks, config errors) as [`SimError`] instead of panicking — the
/// API for callers that must degrade gracefully, e.g. the CLI.
///
/// # Examples
///
/// ```
/// use fpb_sim::{try_run_workload, SchemeSetup, SimOptions};
/// use fpb_trace::catalog;
/// use fpb_types::SystemConfig;
///
/// let cfg = SystemConfig::default();
/// let wl = catalog::workload("xal_m").unwrap();
/// let opts = SimOptions::with_instructions(30_000);
/// let m = try_run_workload(&wl, &cfg, &SchemeSetup::fpb(&cfg), &opts).unwrap();
/// assert_eq!(m.instructions_per_core, 30_000);
/// ```
pub fn try_run_workload(
    workload: &Workload,
    cfg: &SystemConfig,
    setup: &SchemeSetup,
    opts: &SimOptions,
) -> Result<Metrics, SimError> {
    cfg.validate()?;
    System::new(workload, cfg, setup, opts).try_run()
}

/// Builds and warms the per-core front ends for a workload. Warm-up cost
/// dominates short runs, and warmed cores depend only on the workload and
/// system config — sweeping many schemes over one workload should warm
/// once and pass clones to [`run_workload_warmed`].
///
/// # Panics
///
/// Panics if the configuration is invalid.
pub fn warm_cores(workload: &Workload, cfg: &SystemConfig, opts: &SimOptions) -> Vec<CoreState> {
    cfg.validate().expect("invalid system config");
    assert!(
        workload.per_core.len() >= cfg.cores as usize,
        "workload has {} profiles for {} cores",
        workload.per_core.len(),
        cfg.cores
    );
    let mut root = SimRng::seed_from(cfg.seed);
    let warmup = opts.warmup_accesses.unwrap_or(60_000);
    (0..cfg.cores)
        .map(|i| {
            let mut core = CoreState::with_mode(
                workload.per_core[i as usize].clone(),
                CoreId::new(i),
                &cfg.cache,
                &mut root,
                opts.full_hierarchy,
            )
            .expect("invalid cache config");
            let mut wrng = root.fork(0xF111 + i as u64);
            core.warm_up(warmup, &mut wrng);
            core
        })
        .collect()
}

/// Like [`run_workload`] but reusing pre-warmed cores (see
/// [`warm_cores`]). The cores are cloned, so the same warmed set can be
/// replayed under many schemes with identical initial cache state.
pub fn run_workload_warmed(
    workload: &Workload,
    cfg: &SystemConfig,
    setup: &SchemeSetup,
    opts: &SimOptions,
    cores: &[CoreState],
) -> Metrics {
    System::with_cores(workload, cfg, setup, opts, cores.to_vec()).run()
}

impl System {
    /// Builds the system in its initial state.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation or the workload does not provide a
    /// profile for every core.
    pub fn new(
        workload: &Workload,
        cfg: &SystemConfig,
        setup: &SchemeSetup,
        opts: &SimOptions,
    ) -> Self {
        let cores = warm_cores(workload, cfg, opts);
        Self::with_cores(workload, cfg, setup, opts, cores)
    }

    /// Builds the system around pre-warmed cores (see [`warm_cores`]).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    pub fn with_cores(
        workload: &Workload,
        cfg: &SystemConfig,
        setup: &SchemeSetup,
        opts: &SimOptions,
        cores: Vec<CoreState>,
    ) -> Self {
        cfg.validate().expect("invalid system config");
        let _ = workload;
        let geom = DimmGeometry::new(cfg.pcm.chips, cfg.pcm.cells_per_line());
        let mut power = PowerManager::new(setup.policy.clone(), &geom);
        if opts.audit_ledger {
            power.enable_audit();
        }
        // The fault stream forks off its own fresh root so enabling or
        // disabling injection can never perturb the data/write streams.
        let faults = if cfg.faults.any_injection_enabled() {
            Some(FaultInjector::new(
                cfg.faults.clone(),
                SimRng::seed_from(cfg.seed).fork(0xFA017),
            ))
        } else {
            None
        };
        // Round-splitting caps: a single round must be admissible against
        // an empty ledger. With chip budgets, the DIMM's raw budget only
        // yields pt_dimm x e_lcp usable tokens through the local pumps.
        let cap_total = setup.policy.pt_dimm.map(|pt| {
            if setup.policy.enforce_chip_budget {
                ((pt as f64) * setup.policy.e_lcp).floor().max(1.0) as u64
            } else {
                pt
            }
        });
        let cap_chip = if setup.policy.enforce_chip_budget {
            Some((setup.policy.chip_budget_millis() / 1000).max(1))
        } else {
            None
        };
        let banks = (0..cfg.pcm.banks)
            .map(|_| Bank {
                state: BankState::Idle,
                parked: None,
            })
            .collect();
        // Coarse wear tracking: 64 regions, PCM-typical 10^7 endurance.
        let endurance = EnduranceTracker::new(
            cfg.pcm.total_lines(),
            64,
            cfg.pcm.chips,
            10_000_000,
        )
        .with_cells_per_chip(cfg.pcm.cells_per_chip_per_line() as u64);
        let mut sys = System {
            cores,
            banks,
            rdq: VecDeque::new(),
            pending_reads: VecDeque::new(),
            wrq: VecDeque::new(),
            overflow: VecDeque::new(),
            power,
            geom,
            sampler: if setup.preset {
                // PreSET (§7): every changed cell is programmed by the
                // single RESET pulse; SETs happened in advance in the LLC.
                let one = MlcLevelModel::Fixed(1);
                IterationSampler::new(MlcWriteModel {
                    l00: one.clone(),
                    l01: one.clone(),
                    l10: one.clone(),
                    l11: one,
                })
            } else {
                IterationSampler::new(cfg.pcm.write_model.clone())
            },
            wear: setup
                .wear_period
                .map(|p| IntraLineWearLeveler::new(p, cfg.pcm.cells_per_line())),
            data_rng: SimRng::seed_from(cfg.seed).fork(0xDA7A),
            write_rng: SimRng::seed_from(cfg.seed).fork(0x9C3),
            now: Cycles::ZERO,
            burst: false,
            bus_free_at: Cycles::ZERO,
            next_write_id: 0,
            target_instr: opts.instructions_per_core,
            cap_total,
            cap_chip,
            endurance,
            recent_writes: VecDeque::new(),
            scrub_period: opts.scrub_period_cycles,
            next_scrub_at: Cycles::new(opts.scrub_period_cycles.unwrap_or(u64::MAX)),
            faults,
            splitter: RoundSplitter::new(),
            pool: WriteBufferPool::new(),
            events: BinaryHeap::new(),
            due_scratch: Vec::new(),
            deferred_scratch: Vec::new(),
            reference_stepper: opts.reference_stepper,
            reference_alloc: opts.reference_alloc,
            reference_sampler: opts.reference_sampler,
            brownout_since: None,
            degraded: false,
            metrics: Metrics {
                instructions_per_core: opts.instructions_per_core,
                cores: cfg.cores,
                ..Metrics::default()
            },
            cfg: cfg.clone(),
            setup: setup.clone(),
        };
        for ci in 0..sys.cores.len() {
            sys.push_core_event(ci);
        }
        sys
    }

    /// Runs to completion and returns the metrics.
    ///
    /// # Panics
    ///
    /// Panics on an internal scheduling deadlock (a bug, not a workload
    /// property — round splitting guarantees forward progress). Use
    /// [`System::try_run`] to get the failure as a value instead.
    pub fn run(self) -> Metrics {
        match self.try_run() {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs to completion, returning engine failures as [`SimError`].
    pub fn try_run(mut self) -> Result<Metrics, SimError> {
        while self.try_step()? {}
        Ok(self.finish())
    }

    /// Advances the simulation by one event round: process everything due
    /// now, run a scheduling pass, and jump to the next event. Returns
    /// `false` once every core has retired its budget. Useful for
    /// white-box inspection between events; [`System::run`] is the
    /// batteries-included driver.
    ///
    /// # Panics
    ///
    /// Panics on an internal scheduling deadlock (a bug, not a workload
    /// property — round splitting guarantees forward progress). Use
    /// [`System::try_step`] to get the failure as a value instead.
    pub fn step(&mut self) -> bool {
        match self.try_step() {
            Ok(more) => more,
            Err(e) => panic!("{e}"),
        }
    }

    /// Like [`System::step`], returning a scheduling deadlock as
    /// [`SimError::Deadlock`] instead of panicking.
    pub fn try_step(&mut self) -> Result<bool, SimError> {
        self.update_brownout();
        if self.reference_stepper {
            self.process_bank_events();
            self.process_core_arrivals();
        } else {
            self.process_due_events();
        }
        self.schedule();
        if self.cores.iter().all(|c| c.done) {
            return Ok(false);
        }
        let next = if self.reference_stepper {
            self.next_event_time()
        } else {
            self.next_event_time_heap()
        };
        let next = next.ok_or(SimError::Deadlock {
            cycle: self.now.get(),
            pending_writes: self.wrq.len() + self.overflow.len(),
            pending_reads: self.rdq.len() + self.pending_reads.len(),
        })?;
        debug_assert!(next > self.now, "time must advance");
        self.account(next);
        self.now = next;
        Ok(true)
    }

    /// Applies brownout window transitions due at the current time:
    /// withholds budget tokens at a window start, restores them at the
    /// end, and enters/leaves degraded mode when a window persists past
    /// `faults.degraded_after_cycles`.
    fn update_brownout(&mut self) {
        let Some(inj) = self.faults.as_ref() else {
            return;
        };
        let active = inj.brownout_active(self.now);
        if active && !self.power.in_brownout() {
            self.power.begin_brownout(self.cfg.faults.brownout_budget_scale);
            self.metrics.faults.brownout_windows += 1;
            self.brownout_since = Some(self.now);
        } else if !active && self.power.in_brownout() {
            self.power.end_brownout();
            self.brownout_since = None;
            self.degraded = false;
        }
        if let Some(since) = self.brownout_since {
            let threshold = self.cfg.faults.degraded_after_cycles;
            if threshold > 0 && self.now.saturating_sub(since).get() >= threshold {
                self.degraded = true;
            }
        }
    }

    /// Finalizes and returns the metrics (call after [`System::step`]
    /// returns `false`).
    pub fn finish(mut self) -> Metrics {
        self.metrics.cycles = self
            .cores
            .iter()
            .map(|c| c.done_at)
            .max()
            .unwrap_or(self.now)
            .get();
        self.metrics.power = self.power.stats().clone();
        if let Some(inj) = self.faults.as_ref() {
            self.metrics.faults.verify_failures = inj.verify_failures();
            self.metrics.faults.stuck_lines_marked = inj.stuck_marked();
        }
        self.metrics.faults.audit_violations = self.power.audit_violations();
        self.metrics.endurance = Some(self.endurance);
        self.metrics
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Entries currently queued in the write queue (excluding overflow).
    pub fn write_queue_len(&self) -> usize {
        self.wrq.len()
    }

    /// Entries currently queued in the read queue (excluding blocked
    /// arrivals).
    pub fn read_queue_len(&self) -> usize {
        self.rdq.len()
    }

    /// True while the controller is in write-burst mode.
    pub fn in_burst(&self) -> bool {
        self.burst
    }

    /// Snapshot of which banks currently hold a write in any form.
    pub fn banks_with_writes(&self) -> Vec<bool> {
        self.banks
            .iter()
            .map(|b| b.state.has_write() || b.parked.is_some())
            .collect()
    }

    // ---- event processing ----

    /// Installs a bank state, registering its timed event (if any) in
    /// the event heap. Every site that creates a *new* timed state must
    /// go through this; plain assignment is reserved for restoring a
    /// state unchanged (its event is already registered).
    fn set_bank_state(&mut self, bank: usize, state: BankState) {
        if !self.reference_stepper {
            if let Some(t) = state.next_event() {
                self.events.push(Reverse((t, bank as u32)));
            }
        }
        self.banks[bank].state = state;
    }

    /// Registers core `ci`'s next arrival in the event heap (a no-op if
    /// the core has nothing pending).
    fn push_core_event(&mut self, ci: usize) {
        if self.reference_stepper {
            return;
        }
        let c = &self.cores[ci];
        if !c.done && !c.blocked && c.next_op.is_some() {
            let src = (self.banks.len() + ci) as u32;
            self.events.push(Reverse((c.ready_at, src)));
        }
    }

    /// Heap-driven replacement for the per-step
    /// [`System::process_bank_events`] + [`System::process_core_arrivals`]
    /// scans: only sources with a due heap entry are visited. Processing
    /// order is banks ascending, then cores ascending — identical to the
    /// scans — and a second drain picks up cores made ready at exactly
    /// `now` by a bank completion (the scan's core pass runs after its
    /// bank pass and would see them too). Bank events that appear at
    /// exactly `now` during processing are deferred to the next step,
    /// again matching the scan.
    fn process_due_events(&mut self) {
        let nbanks = self.banks.len() as u32;
        let mut due = std::mem::take(&mut self.due_scratch);
        let mut deferred = std::mem::take(&mut self.deferred_scratch);
        due.clear();
        deferred.clear();
        while let Some(&Reverse((t, src))) = self.events.peek() {
            if t > self.now {
                break;
            }
            self.events.pop();
            due.push(src);
        }
        due.sort_unstable();
        due.dedup();
        let core_start = due.partition_point(|&s| s < nbanks);
        for &src in &due[..core_start] {
            let b = src as usize;
            // Lazy invalidation: skip entries whose bank has moved on.
            if matches!(self.banks[b].state.next_event(), Some(t) if t <= self.now) {
                self.process_bank_event(b);
            }
        }
        while let Some(&Reverse((t, src))) = self.events.peek() {
            if t > self.now {
                break;
            }
            self.events.pop();
            if src < nbanks {
                deferred.push((t, src));
            } else {
                due.push(src);
            }
        }
        due[core_start..].sort_unstable();
        let mut prev = u32::MAX;
        for &src in &due[core_start..] {
            if src == prev {
                continue;
            }
            prev = src;
            self.process_core((src - nbanks) as usize);
        }
        for &(t, src) in &deferred {
            self.events.push(Reverse((t, src)));
        }
        due.clear();
        deferred.clear();
        self.due_scratch = due;
        self.deferred_scratch = deferred;
    }

    /// Reference stepper: visit every bank and process the due ones.
    fn process_bank_events(&mut self) {
        for b in 0..self.banks.len() {
            let due = matches!(self.banks[b].state.next_event(), Some(t) if t <= self.now);
            if due {
                self.process_bank_event(b);
            }
        }
    }

    /// Handles the due event on bank `b` (caller checked due-ness).
    fn process_bank_event(&mut self, b: usize) {
        let state = std::mem::replace(&mut self.banks[b].state, BankState::Idle);
        match state {
            BankState::Reading { core, .. } => {
                if core == SCRUB_CORE {
                    self.metrics.scrub_reads += 1;
                } else {
                    self.metrics.pcm_reads += 1;
                    self.cores[core].blocked = false;
                    let now = self.now;
                    let target = self.target_instr;
                    self.cores[core].schedule_next(now, target);
                    self.push_core_event(core);
                }
            }
            BankState::Writing {
                mut task,
                in_pre_read,
                cancel_pending,
                ..
            } => {
                if in_pre_read {
                    // Comparison read done; the admitted first
                    // iteration starts now.
                    self.start_iteration(b, task, cancel_pending);
                    return;
                }
                task.round_mut().advance();
                task.iterations_spent = task.iterations_spent.saturating_add(1);
                let wd = self.cfg.faults.watchdog_iterations;
                if self.faults.is_some()
                    && wd > 0
                    && !task.round().is_complete()
                    && task.iterations_spent >= wd
                {
                    // Watchdog: a round that burned this many
                    // iterations (retry storms on a persistently
                    // failing line) is force-closed so the bank and
                    // its tokens cannot be held hostage.
                    task.watchdog_tripped = true;
                    self.metrics.faults.watchdog_trips += 1;
                    self.finish_round(b, task);
                    return;
                }
                if task.round().is_complete() {
                    self.finish_round(b, task);
                } else if cancel_pending {
                    self.cancel_write(task);
                } else if self.setup.write_pausing
                    && !self.burst
                    && self.bank_has_waiting_read(b)
                {
                    self.power.release(task.id);
                    self.metrics.pauses += 1;
                    self.banks[b].parked = Some(task);
                } else if self.power.try_advance(task.id, task.round()) {
                    self.start_iteration(b, task, false);
                } else {
                    self.banks[b].state = BankState::WriteStalled {
                        task,
                        since: self.now,
                    };
                }
            }
            BankState::Draining { task, .. } => {
                // The assumed worst-case time has elapsed; the
                // feedback-less controller finally frees the bank.
                self.finish_round_now(b, task);
            }
            BankState::Backoff { mut task, .. } => {
                // Backoff expired: re-admit the restarted round.
                if self.power.try_admit(task.id, task.round_mut()) {
                    task.round_started_at = self.now;
                    self.start_iteration(b, task, false);
                } else {
                    self.banks[b].state = BankState::AwaitingRound {
                        task,
                        since: self.now,
                    };
                }
            }
            other => {
                // Stalled/awaiting states carry no timed event.
                self.banks[b].state = other;
            }
        }
    }

    /// Reference stepper: visit every core and drain its ready ops.
    fn process_core_arrivals(&mut self) {
        for ci in 0..self.cores.len() {
            self.process_core(ci);
        }
    }

    /// Drains core `ci`'s consecutive ready operations, then registers
    /// its next (future) arrival. A no-op for a core that is not ready.
    fn process_core(&mut self, ci: usize) {
        loop {
            let ready = !self.cores[ci].done
                && !self.cores[ci].blocked
                && self.cores[ci].next_op.is_some()
                && self.cores[ci].ready_at <= self.now;
            if !ready {
                break;
            }
            // The ready check above guarantees a pending op; a bare
            // `None` would only mean scheduling skew, so stop draining.
            let Some(op) = self.cores[ci].take_op() else {
                break;
            };
            let outcome = self.cores[ci].llc_access(op.addr, op.is_write);
            for wb in outcome.writebacks {
                self.enqueue_write(LineAddr::new(wb), ci);
            }
            if op.is_write && outcome.fill.is_none() {
                // An L2 write-back into the LLC: non-blocking.
                let t = self.now + Cycles::new(1);
                let target = self.target_instr;
                self.cores[ci].schedule_next(t, target);
            } else if let Some(line) = outcome.fill {
                let line = LineAddr::new(line);
                if self.forward_from_write_queue(line) {
                    let t = self.now + Cycles::new(self.cfg.queues.mc_to_bank_cycles);
                    let target = self.target_instr;
                    self.cores[ci].schedule_next(t, target);
                } else {
                    self.cores[ci].blocked = true;
                    self.pending_reads.push_back(ReadTask {
                        core: ci,
                        line,
                        bank: line.bank_of(self.cfg.pcm.banks),
                        arrival: self.now,
                    });
                }
            } else {
                let hit_cycles = match outcome.level {
                    fpb_cache::HitLevel::L1 => self.cfg.cache.l1_hit_cycles,
                    fpb_cache::HitLevel::L2 => self.cfg.cache.l2_hit_cycles,
                    _ => self.cfg.cache.l3_hit_cycles,
                };
                let t = self.now + Cycles::new(hit_cycles);
                let target = self.target_instr;
                self.cores[ci].schedule_next(t, target);
            }
        }
        self.push_core_event(ci);
    }

    // ---- scheduling pass ----

    fn schedule(&mut self) {
        // 1. Overflowed writes move into the queue as space frees.
        while self.wrq.len() < self.cfg.queues.write_entries {
            match self.overflow.pop_front() {
                Some(t) => self.wrq.push_back(t),
                None => break,
            }
        }
        // 2. Write-burst bookkeeping (§5.1: burst while the full queue
        // drains to empty).
        if self.wrq.len() >= self.cfg.queues.write_entries {
            self.burst = true;
        }
        if self.burst && self.wrq.is_empty() && self.overflow.is_empty() {
            self.burst = false;
        }
        // 3. Retry parked writes: token stalls, round boundaries, pauses.
        self.retry_parked();
        // 4. Pending reads enter the read queue as space frees.
        while self.rdq.len() < self.cfg.queues.read_entries {
            match self.pending_reads.pop_front() {
                Some(r) => {
                    self.note_read_arrival(r.bank);
                    self.rdq.push_back(r);
                }
                None => break,
            }
        }
        // 4b. Periodic drift scrubbing: re-read recently written lines so
        // their intermediate levels are refreshed before drifting across a
        // read boundary. Scrubs ride the normal read path but never block
        // a core.
        if let Some(period) = self.scrub_period {
            while self.now >= self.next_scrub_at {
                if let Some(line) = self.recent_writes.pop_front() {
                    self.pending_reads.push_back(ReadTask {
                        core: SCRUB_CORE,
                        line,
                        bank: line.bank_of(self.cfg.pcm.banks),
                        arrival: self.now,
                    });
                }
                self.next_scrub_at += Cycles::new(period);
            }
        }
        // 5. Reads first (never during a write burst).
        if !self.burst {
            let mut i = 0;
            while i < self.rdq.len() {
                let bank = self.rdq[i].bank.index();
                if self.banks[bank].state.accepts_read() {
                    if let Some(r) = self.rdq.remove(i) {
                        self.issue_read(r);
                    }
                } else {
                    i += 1;
                }
            }
        }
        // 6. Writes only when no read is waiting, or during a burst.
        let reads_waiting = !self.rdq.is_empty() || !self.pending_reads.is_empty();
        if self.burst || !reads_waiting {
            let mut i = 0;
            while i < self.wrq.len() {
                let bank = self.wrq[i].bank.index();
                let free =
                    self.banks[bank].state.accepts_write() && self.banks[bank].parked.is_none();
                if free {
                    if let Some(mut task) = self.wrq.remove(i) {
                        if self.power.try_admit(task.id, task.round_mut()) {
                            self.metrics.write_queue_delay +=
                                self.now.saturating_sub(task.arrival).get();
                            task.round_started_at = self.now;
                            self.issue_write(bank, task);
                            continue; // same index now holds the next entry
                        }
                        // Not admissible: put it back and scan on
                        // (out-of-order write scheduling over the queue).
                        self.wrq.insert(i, task);
                    }
                }
                i += 1;
            }
        }
    }

    fn retry_parked(&mut self) {
        for b in 0..self.banks.len() {
            // Only token-starved states are retried; timed states are
            // never taken out and put back (a replace-and-restore would
            // look like a fresh install to the event heap).
            let parked_kind = matches!(
                self.banks[b].state,
                BankState::WriteStalled { .. } | BankState::AwaitingRound { .. }
            );
            if parked_kind {
                let state = std::mem::replace(&mut self.banks[b].state, BankState::Idle);
                match state {
                    BankState::WriteStalled { task, since } => {
                        if self.power.try_advance(task.id, task.round()) {
                            self.start_iteration(b, task, false);
                        } else {
                            self.banks[b].state = BankState::WriteStalled { task, since };
                        }
                    }
                    BankState::AwaitingRound { mut task, since } => {
                        if self.power.try_admit(task.id, task.round_mut()) {
                            task.round_started_at = self.now;
                            self.start_iteration(b, task, false);
                        } else {
                            self.banks[b].state = BankState::AwaitingRound { task, since };
                        }
                    }
                    other => {
                        self.banks[b].state = other;
                    }
                }
            }
            // Resume a paused write once its bank has no waiting reads.
            // A parked write resumes once its bank has no waiting reads —
            // or unconditionally during a write burst, when writes own the
            // DIMM and reads are blocked anyway (otherwise a paused write
            // and a burst-blocked read deadlock each other).
            if matches!(self.banks[b].state, BankState::Idle)
                && self.banks[b].parked.is_some()
                && (self.burst || !self.bank_has_waiting_read(b))
            {
                if let Some(task) = self.banks[b].parked.take() {
                    if self.power.try_advance(task.id, task.round()) {
                        self.start_iteration(b, task, false);
                    } else {
                        self.banks[b].parked = Some(task);
                    }
                }
            }
        }
    }

    // ---- issue paths ----

    fn issue_read(&mut self, r: ReadTask) {
        let start = self.now.max(self.bus_free_at);
        self.bus_free_at = start + Cycles::new(self.cfg.queues.bus_cycles_per_line);
        let done_at = start
            + Cycles::new(self.cfg.queues.mc_to_bank_cycles)
            + Cycles::new(self.cfg.pcm.read_cycles);
        if r.core != SCRUB_CORE {
            self.metrics.read_latency_sum += done_at.saturating_sub(r.arrival).get();
        }
        self.set_bank_state(
            r.bank.index(),
            BankState::Reading {
                done_at,
                core: r.core,
            },
        );
    }

    /// Issues a freshly admitted write task (round 0) to its bank.
    fn issue_write(&mut self, bank: usize, mut task: WriteTask) {
        let start = self
            .now
            .max(self.bus_free_at)
            + Cycles::new(self.cfg.queues.mc_to_bank_cycles);
        self.bus_free_at =
            self.now.max(self.bus_free_at) + Cycles::new(self.cfg.queues.bus_cycles_per_line);
        if self.setup.pre_write_read && !task.pre_read_done {
            task.pre_read_done = true;
            self.set_bank_state(
                bank,
                BankState::Writing {
                    iter_done_at: start + Cycles::new(self.cfg.pcm.compare_read_cycles),
                    task,
                    in_pre_read: true,
                    cancel_pending: false,
                },
            );
        } else {
            let dur = self.iteration_cycles(task.round());
            self.set_bank_state(
                bank,
                BankState::Writing {
                    iter_done_at: start + dur,
                    task,
                    in_pre_read: false,
                    cancel_pending: false,
                },
            );
        }
    }

    /// Starts the next iteration of an already-admitted round.
    fn start_iteration(&mut self, bank: usize, task: WriteTask, cancel_pending: bool) {
        let dur = self.iteration_cycles(task.round());
        self.set_bank_state(
            bank,
            BankState::Writing {
                iter_done_at: self.now + dur,
                task,
                in_pre_read: false,
                cancel_pending,
            },
        );
    }

    /// Duration of the round's next iteration. The caller guarantees the
    /// round is incomplete; if that invariant is ever broken, the SET
    /// pulse time is a safe fallback (the completed round closes at the
    /// next bank event rather than bringing the simulation down).
    fn iteration_cycles(&self, write: &LineWrite) -> Cycles {
        match write.next_demand() {
            Some(d) => match d.kind {
                IterKind::Reset { .. } => Cycles::new(self.cfg.pcm.reset_cycles),
                IterKind::Set { .. } => Cycles::new(self.cfg.pcm.set_cycles),
            },
            None => Cycles::new(self.cfg.pcm.set_cycles),
        }
    }

    fn finish_round(&mut self, bank: usize, task: WriteTask) {
        if self.setup.mc_worst_case {
            let until = task.round_started_at + self.worst_case_write_cycles(&task);
            if until > self.now {
                self.set_bank_state(bank, BankState::Draining { task, until });
                return;
            }
        }
        self.finish_round_now(bank, task);
    }

    /// Worst-case duration of the current round, as a controller without
    /// device feedback must assume it (§2.1.1): every cell takes the P&V
    /// bound.
    fn worst_case_write_cycles(&self, task: &WriteTask) -> Cycles {
        let resets = task.round().reset_groups() as u64;
        let sets = self.sampler.worst_case_iterations().saturating_sub(1) as u64;
        Cycles::new(
            resets * self.cfg.pcm.reset_cycles + sets * self.cfg.pcm.set_cycles,
        )
    }

    fn finish_round_now(&mut self, bank: usize, mut task: WriteTask) {
        self.power.release(task.id);
        // Device fault hook: the round's closing verify may fail (skipped
        // when the watchdog already force-closed the round — it must free
        // the bank unconditionally).
        if !task.watchdog_tripped {
            if let Some(inj) = self.faults.as_mut() {
                if inj.round_fails_verify(task.line) {
                    self.handle_verify_failure(bank, task);
                    return;
                }
            }
        }
        self.metrics.write_rounds += 1;
        if self.metrics.per_chip_cells.is_empty() {
            self.metrics.per_chip_cells = vec![0; self.cfg.pcm.chips as usize];
        }
        let per_chip = task.round().per_chip_changed();
        self.endurance.record_write(task.line, &per_chip);
        if let Some(inj) = self.faults.as_mut() {
            inj.note_write(task.line, &self.endurance);
        }
        for (acc, c) in self.metrics.per_chip_cells.iter_mut().zip(per_chip) {
            *acc += c as u64;
        }
        // Cells are programmed when their round closes, so the global and
        // per-chip tallies accumulate at the same point — the two always
        // agree even when a later round of the same task is still in
        // flight at the end of the run.
        self.metrics.cells_written += task.round().total_changed() as u64;
        if task.round().was_truncated() {
            self.metrics.truncations += 1;
        }
        // The round closed: its recovery bookkeeping starts fresh.
        task.retries = 0;
        task.iterations_spent = 0;
        task.watchdog_tripped = false;
        if task.next_round() {
            self.banks[bank].state = BankState::AwaitingRound {
                task,
                since: self.now,
            };
        } else {
            self.metrics.pcm_writes += 1;
            if self.scrub_period.is_some() {
                if self.recent_writes.len() >= 4096 {
                    self.recent_writes.pop_front();
                }
                self.recent_writes.push_back(task.line);
            }
            self.banks[bank].state = BankState::Idle;
            if !self.reference_alloc {
                self.pool.recycle_rounds(task.rounds);
            }
        }
    }

    /// A round's closing verify failed. Bounded recovery: retry the round
    /// after an exponential backoff; once retries are exhausted, remap the
    /// line to a spare and rewrite the round in SLC fallback mode (RESET
    /// pulses only — single-level programming completes even on weak
    /// cells).
    fn handle_verify_failure(&mut self, bank: usize, mut task: WriteTask) {
        let fcfg = &self.cfg.faults;
        if task.retries < fcfg.max_retries {
            task.retries += 1;
            self.metrics.faults.retries += 1;
            // Doubling backoff, shift-clamped so u8::MAX retries cannot
            // overflow the cycle math.
            let backoff = fcfg
                .retry_backoff_cycles
                .saturating_mul(1u64 << (u32::from(task.retries) - 1).min(16))
                .max(1);
            task.round_mut().restart();
            self.set_bank_state(
                bank,
                BankState::Backoff {
                    task,
                    until: self.now + Cycles::new(backoff),
                },
            );
        } else {
            if let Some(inj) = self.faults.as_mut() {
                inj.remap(task.line);
            }
            self.metrics.faults.remaps += 1;
            self.metrics.faults.slc_fallbacks += 1;
            task.retries = 0;
            task.round_mut().restart();
            task.round_mut().degrade_to_slc();
            let until = self.now + Cycles::new(fcfg.retry_backoff_cycles.max(1));
            self.set_bank_state(bank, BankState::Backoff { task, until });
        }
    }

    fn cancel_write(&mut self, mut task: WriteTask) {
        self.power.release(task.id);
        task.round_mut().restart();
        self.metrics.cancellations += 1;
        self.wrq.push_front(task);
    }

    // ---- request creation ----

    fn enqueue_write(&mut self, line: LineAddr, core: usize) {
        // Coalesce with a not-yet-issued write to the same line: the new
        // data replaces the queued data.
        let in_wrq = self.wrq.iter().position(|t| t.line == line);
        let in_ovf = self.overflow.iter().position(|t| t.line == line);
        if let Some(i) = in_wrq {
            let arrival = self.wrq[i].arrival;
            let task = self.make_task(line, core, arrival);
            let old = std::mem::replace(&mut self.wrq[i], task);
            if !self.reference_alloc {
                self.pool.recycle_rounds(old.rounds);
            }
            return;
        }
        if let Some(i) = in_ovf {
            let arrival = self.overflow[i].arrival;
            let task = self.make_task(line, core, arrival);
            let old = std::mem::replace(&mut self.overflow[i], task);
            if !self.reference_alloc {
                self.pool.recycle_rounds(old.rounds);
            }
            return;
        }
        let task = self.make_task(line, core, self.now);
        if self.wrq.len() < self.cfg.queues.write_entries {
            self.wrq.push_back(task);
            if self.wrq.len() >= self.cfg.queues.write_entries {
                self.burst = true;
            }
        } else {
            self.burst = true;
            self.overflow.push_back(task);
        }
    }

    /// Builds one round's [`LineWrite`], pooled or fresh. A free-standing
    /// helper (not `&mut self`) so it can borrow the splitter's round
    /// slices and the pool at the same time.
    #[allow(clippy::too_many_arguments)]
    fn build_round(
        pool: &mut WriteBufferPool,
        cells: &[(u32, fpb_pcm::MlcLevel)],
        geom: &DimmGeometry,
        setup: &SchemeSetup,
        sampler: &IterationSampler,
        rng: &mut SimRng,
        reference_alloc: bool,
    ) -> LineWrite {
        let w = if reference_alloc {
            LineWrite::from_cells(cells, geom, setup.mapping, sampler, rng, 1)
        } else {
            pool.build(cells, geom, setup.mapping, sampler, rng, 1)
        };
        match setup.truncation_ecc {
            Some(ecc) => w.with_truncation(ecc),
            None => w,
        }
    }

    fn make_task(&mut self, line: LineAddr, core: usize, arrival: Cycles) -> WriteTask {
        let profile = self.cores[core].data_profile();
        let mut changes = if self.reference_sampler {
            profile.sample_change_set_reference(self.cfg.pcm.line_bytes, &mut self.data_rng)
        } else {
            let mut cs = if self.reference_alloc {
                ChangeSet::empty()
            } else {
                self.pool.take_change_set()
            };
            profile.sample_change_set_into(self.cfg.pcm.line_bytes, &mut self.data_rng, &mut cs);
            cs
        };
        if let Some(wear) = self.wear.as_mut() {
            let offset = wear.offset_for_write(line, &mut self.data_rng);
            changes.rotate_in_place(offset, self.cfg.pcm.cells_per_line());
        }
        let chips = self.cfg.pcm.chips;
        let mut rounds = if self.reference_alloc {
            Vec::new()
        } else {
            self.pool.take_rounds()
        };
        match self.splitter.split_in(
            &changes,
            self.cap_total,
            self.cap_chip,
            self.setup.mapping,
            chips,
        ) {
            None => rounds.push(Self::build_round(
                &mut self.pool,
                changes.cells(),
                &self.geom,
                &self.setup,
                &self.sampler,
                &mut self.write_rng,
                self.reference_alloc,
            )),
            Some(k) => {
                for i in 0..k {
                    rounds.push(Self::build_round(
                        &mut self.pool,
                        self.splitter.round(i),
                        &self.geom,
                        &self.setup,
                        &self.sampler,
                        &mut self.write_rng,
                        self.reference_alloc,
                    ));
                }
            }
        }
        if !self.reference_alloc {
            self.pool.recycle_change_set(changes);
        }
        if self.degraded {
            // Degraded mode: a persistent brownout leaves too little power
            // for full MLC program-and-verify, so new writes fall back to
            // single-level programming (RESET pulses only).
            for w in rounds.iter_mut() {
                w.degrade_to_slc();
            }
            self.metrics.faults.degraded_writes += 1;
        }
        self.next_write_id += 1;
        WriteTask {
            id: WriteId::new(self.next_write_id),
            line,
            bank: line.bank_of(self.cfg.pcm.banks),
            arrival,
            rounds,
            current_round: 0,
            pre_read_done: false,
            round_started_at: Cycles::ZERO,
            retries: 0,
            iterations_spent: 0,
            watchdog_tripped: false,
        }
    }

    fn forward_from_write_queue(&self, line: LineAddr) -> bool {
        self.wrq.iter().chain(self.overflow.iter()).any(|t| t.line == line)
    }

    // ---- read-arrival hooks for WC/WP ----

    fn note_read_arrival(&mut self, bank: fpb_types::BankId) {
        if !self.setup.write_cancellation {
            return;
        }
        if let BankState::Writing {
            task,
            cancel_pending,
            in_pre_read,
            ..
        } = &mut self.banks[bank.index()].state
        {
            let progress = if *in_pre_read {
                0.0
            } else {
                task.round().progress()
            };
            if progress < 0.5 {
                *cancel_pending = true;
            }
        }
    }

    fn bank_has_waiting_read(&self, bank: usize) -> bool {
        self.rdq.iter().any(|r| r.bank.index() == bank)
            || self.pending_reads.iter().any(|r| r.bank.index() == bank)
    }

    // ---- time bookkeeping ----

    /// Reference stepper: scan every bank and core for the earliest
    /// pending event.
    fn next_event_time(&self) -> Option<Cycles> {
        let bank_next = self
            .banks
            .iter()
            .filter_map(|b| b.state.next_event())
            .min();
        let core_next = self
            .cores
            .iter()
            .filter(|c| !c.done && !c.blocked && c.next_op.is_some())
            .map(|c| c.ready_at)
            .min();
        let next = match (bank_next, core_next) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.merge_global_events(next)
    }

    /// Heap stepper: the earliest *live* heap entry is the earliest
    /// pending bank/core event. Stale entries (their source has since
    /// scheduled a different time, or nothing at all) are popped on the
    /// way; every live event always has an entry at its exact time, so
    /// after cleanup the heap minimum equals the scan minimum.
    fn next_event_time_heap(&mut self) -> Option<Cycles> {
        let nbanks = self.banks.len() as u32;
        let mut next = None;
        while let Some(&Reverse((t, src))) = self.events.peek() {
            let live = if src < nbanks {
                self.banks[src as usize].state.next_event() == Some(t)
            } else {
                let c = &self.cores[(src - nbanks) as usize];
                !c.done && !c.blocked && c.next_op.is_some() && c.ready_at == t
            };
            if live {
                next = Some(t);
                break;
            }
            self.events.pop();
        }
        self.merge_global_events(next)
    }

    /// Folds the stepper-independent event sources (scrub ticks,
    /// brownout window edges) into `next` and clamps time forward.
    fn merge_global_events(&self, mut next: Option<Cycles>) -> Option<Cycles> {
        // A pending scrub candidate makes the scrub tick a real event.
        if self.scrub_period.is_some() && !self.recent_writes.is_empty() {
            next = Some(match next {
                Some(t) => t.min(self.next_scrub_at),
                None => self.next_scrub_at,
            });
        }
        // Brownout window edges are real events: tokens withheld at the
        // start must be restored at the end, and a write refused under the
        // shrunk budget only becomes admissible once the window closes —
        // skipping the edge would deadlock it.
        if let Some(inj) = self.faults.as_ref() {
            if let Some(edge) = inj.next_brownout_boundary(self.now) {
                next = Some(match next {
                    Some(t) => t.min(edge),
                    None => edge,
                });
            }
        }
        next.map(|t| t.max(self.now + Cycles::new(1)))
    }

    /// Pool telemetry: `(reuses, fresh_allocations)` of the write-buffer
    /// pool, for benches and tests asserting the steady-state write path
    /// stops allocating.
    pub fn pool_stats(&self) -> (u64, u64) {
        (self.pool.reuses(), self.pool.fresh_allocations())
    }

    fn account(&mut self, until: Cycles) {
        let delta = until.saturating_sub(self.now).get();
        if self.burst {
            self.metrics.burst_cycles += delta;
        }
        let writing = self
            .banks
            .iter()
            .any(|b| matches!(b.state, BankState::Writing { .. }));
        if writing {
            self.metrics.write_active_cycles += delta;
        }
        if self.power.in_brownout() {
            self.metrics.faults.brownout_cycles += delta;
        }
        if self.degraded {
            self.metrics.faults.degraded_cycles += delta;
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use fpb_pcm::CellMapping;
    use fpb_trace::catalog;

    fn small_opts() -> SimOptions {
        SimOptions::with_instructions(60_000)
    }

    fn cfg() -> SystemConfig {
        SystemConfig::default()
    }

    #[test]
    fn ideal_run_completes_with_traffic() {
        let cfg = cfg();
        let wl = catalog::workload("mcf_m").unwrap();
        let m = run_workload(&wl, &cfg, &SchemeSetup::ideal(&cfg), &small_opts());
        assert!(m.cycles > 60_000, "cycles = {}", m.cycles);
        assert!(m.pcm_reads > 0, "no PCM reads");
        assert!(m.pcm_writes > 0, "no PCM writes");
        assert!(m.cpi() >= 1.0, "CPI = {}", m.cpi());
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = cfg();
        let wl = catalog::workload("lbm_m").unwrap();
        let a = run_workload(&wl, &cfg, &SchemeSetup::fpb(&cfg), &small_opts());
        let b = run_workload(&wl, &cfg, &SchemeSetup::fpb(&cfg), &small_opts());
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.pcm_writes, b.pcm_writes);
        assert_eq!(a.burst_cycles, b.burst_cycles);
    }

    #[test]
    fn power_limits_cost_performance() {
        // The headline ordering of Fig. 4: Ideal >= DIMM-only >= DIMM+chip.
        let cfg = cfg();
        let wl = catalog::workload("mcf_m").unwrap();
        let ideal = run_workload(&wl, &cfg, &SchemeSetup::ideal(&cfg), &small_opts());
        let dimm = run_workload(&wl, &cfg, &SchemeSetup::dimm_only(&cfg), &small_opts());
        let chip = run_workload(&wl, &cfg, &SchemeSetup::dimm_chip(&cfg), &small_opts());
        assert!(
            ideal.cycles <= dimm.cycles,
            "ideal {} vs dimm {}",
            ideal.cycles,
            dimm.cycles
        );
        assert!(
            dimm.cycles <= chip.cycles,
            "dimm {} vs chip {}",
            dimm.cycles,
            chip.cycles
        );
        // And the restriction must actually hurt on a write-heavy load.
        assert!(
            chip.cycles > ideal.cycles,
            "chip budget should cost cycles"
        );
    }

    #[test]
    fn fpb_recovers_performance() {
        let cfg = cfg();
        let wl = catalog::workload("mcf_m").unwrap();
        let chip = run_workload(&wl, &cfg, &SchemeSetup::dimm_chip(&cfg), &small_opts());
        let fpb = run_workload(&wl, &cfg, &SchemeSetup::fpb(&cfg), &small_opts());
        let ideal = run_workload(&wl, &cfg, &SchemeSetup::ideal(&cfg), &small_opts());
        assert!(
            fpb.cycles < chip.cycles,
            "FPB {} must beat DIMM+chip {}",
            fpb.cycles,
            chip.cycles
        );
        assert!(
            fpb.cycles >= ideal.cycles,
            "FPB cannot beat Ideal"
        );
    }

    #[test]
    fn gcp_uses_tokens_under_naive_mapping() {
        let cfg = cfg();
        let wl = catalog::workload("ast_m").unwrap();
        let m = run_workload(
            &wl,
            &cfg,
            &SchemeSetup::gcp(&cfg, CellMapping::Naive, 0.7),
            &small_opts(),
        );
        assert!(
            m.power.gcp_grants() > 0,
            "integer data under NE must pressure some chip"
        );
    }

    #[test]
    fn bim_reduces_gcp_pressure_vs_naive() {
        let cfg = cfg();
        let wl = catalog::workload("ast_m").unwrap();
        let ne = run_workload(
            &wl,
            &cfg,
            &SchemeSetup::gcp(&cfg, CellMapping::Naive, 0.7),
            &small_opts(),
        );
        let bim = run_workload(
            &wl,
            &cfg,
            &SchemeSetup::gcp(&cfg, CellMapping::Bim, 0.7),
            &small_opts(),
        );
        assert!(
            bim.power.gcp_usable_total() < ne.power.gcp_usable_total(),
            "BIM {} vs NE {}",
            bim.power.gcp_usable_total(),
            ne.power.gcp_usable_total()
        );
    }

    #[test]
    fn write_burst_time_is_substantial_on_write_heavy_load() {
        let cfg = cfg();
        let wl = catalog::workload("mum_m").unwrap();
        let m = run_workload(&wl, &cfg, &SchemeSetup::dimm_chip(&cfg), &small_opts());
        assert!(
            m.burst_fraction() > 0.05,
            "burst fraction = {}",
            m.burst_fraction()
        );
    }

    #[test]
    fn truncation_reduces_cycles() {
        let cfg = cfg();
        let wl = catalog::workload("lbm_m").unwrap();
        let plain = run_workload(&wl, &cfg, &SchemeSetup::fpb(&cfg), &small_opts());
        let wt = run_workload(&wl, &cfg, &SchemeSetup::fpb(&cfg).with_wt(8), &small_opts());
        assert!(wt.truncations > 0, "no truncations recorded");
        // At bench scale WT is a clear win; at this test scale allow a
        // small scheduling-noise band while still catching regressions
        // where truncation would somehow slow writes down broadly.
        assert!(
            (wt.cycles as f64) <= plain.cycles as f64 * 1.05,
            "WT {} vs plain {}",
            wt.cycles,
            plain.cycles
        );
    }

    #[test]
    fn write_pausing_pauses_and_improves_read_latency() {
        let cfg = cfg();
        let wl = catalog::workload("mcf_m").unwrap();
        let plain = run_workload(&wl, &cfg, &SchemeSetup::fpb(&cfg), &small_opts());
        let wp = run_workload(
            &wl,
            &cfg,
            &SchemeSetup::fpb(&cfg).with_wc().with_wp(),
            &small_opts(),
        );
        assert!(wp.pauses > 0, "WP must actually pause writes");
        assert!(
            wp.avg_read_latency() < plain.avg_read_latency() * 1.3,
            "WP {} vs plain {}",
            wp.avg_read_latency(),
            plain.avg_read_latency()
        );
    }

    #[test]
    fn write_cancellation_cancels_young_writes() {
        let cfg = cfg();
        let wl = catalog::workload("tig_m").unwrap(); // read-heavy: many conflicts
        let wc = run_workload(&wl, &cfg, &SchemeSetup::fpb(&cfg).with_wc(), &small_opts());
        assert!(wc.cancellations > 0, "WC must trigger on a read-heavy load");
    }

    #[test]
    fn preset_writes_are_single_iteration() {
        let cfg = cfg();
        let wl = catalog::workload("lbm_m").unwrap();
        let plain = run_workload(&wl, &cfg, &SchemeSetup::fpb(&cfg), &small_opts());
        let preset = run_workload(&wl, &cfg, &SchemeSetup::fpb(&cfg).with_preset(), &small_opts());
        // Single-RESET writes slash write-active time per write.
        let plain_cost = plain.write_active_cycles as f64 / plain.pcm_writes.max(1) as f64;
        let preset_cost = preset.write_active_cycles as f64 / preset.pcm_writes.max(1) as f64;
        assert!(
            preset_cost < plain_cost / 2.0,
            "preset {preset_cost} vs plain {plain_cost}"
        );
    }

    #[test]
    fn gcp_regulation_reduces_waste() {
        let cfg = cfg().with_gcp_efficiency(0.4);
        let wl = catalog::workload("ast_m").unwrap();
        let plain = run_workload(
            &wl,
            &cfg,
            &SchemeSetup::gcp(&cfg, CellMapping::Naive, 0.4),
            &small_opts(),
        );
        let reg = run_workload(
            &wl,
            &cfg,
            &SchemeSetup::gcp(&cfg, CellMapping::Naive, 0.4).with_gcp_regulation(),
            &small_opts(),
        );
        if plain.power.gcp_grants() > 0 && reg.power.gcp_grants() > 0 {
            let plain_rate = plain.power.gcp_waste_total().as_f64()
                / plain.power.gcp_usable_total().as_f64().max(1e-9);
            let reg_rate = reg.power.gcp_waste_total().as_f64()
                / reg.power.gcp_usable_total().as_f64().max(1e-9);
            assert!(
                reg_rate <= plain_rate + 1e-9,
                "regulation must not waste more: {reg_rate} vs {plain_rate}"
            );
        }
    }

    #[test]
    fn tight_budget_forces_multi_round_writes() {
        let mut cfg = cfg();
        cfg.power.pt_dimm = 96; // far below typical change counts
        let wl = catalog::workload("lbm_m").unwrap();
        let m = run_workload(&wl, &cfg, &SchemeSetup::dimm_chip(&cfg), &small_opts());
        assert!(
            m.write_rounds > m.pcm_writes,
            "rounds {} must exceed writes {}",
            m.write_rounds,
            m.pcm_writes
        );
    }

    #[test]
    fn per_chip_cells_accumulate_consistently() {
        let cfg = cfg();
        let wl = catalog::workload("cop_m").unwrap();
        let m = run_workload(&wl, &cfg, &SchemeSetup::fpb(&cfg), &small_opts());
        assert_eq!(m.per_chip_cells.len(), 8);
        assert_eq!(m.per_chip_cells.iter().sum::<u64>(), m.cells_written);
        // BIM keeps wear nearly even on streaming data.
        assert!(m.chip_imbalance() < 1.3, "imbalance {}", m.chip_imbalance());
    }

    #[test]
    fn full_hierarchy_mode_runs_and_filters() {
        let cfg = cfg();
        let wl = catalog::workload("lbm_m").unwrap();
        let mut opts = small_opts();
        opts.full_hierarchy = true;
        let full = run_workload(&wl, &cfg, &SchemeSetup::fpb(&cfg), &opts);
        let llc_only = run_workload(&wl, &cfg, &SchemeSetup::fpb(&cfg), &small_opts());
        assert!(full.pcm_reads > 0 && full.pcm_writes > 0);
        // The two front ends agree on traffic scale. Full mode adds
        // write-allocate fill reads for store misses (the L1/L2 fetch on
        // write) and removes short-term-reuse reads, so counts differ but
        // stay in the same regime.
        let ratio = full.pcm_reads as f64 / llc_only.pcm_reads as f64;
        assert!(
            (0.5..2.5).contains(&ratio),
            "full {} vs llc {}",
            full.pcm_reads,
            llc_only.pcm_reads
        );
        // Deterministic too.
        let again = run_workload(&wl, &cfg, &SchemeSetup::fpb(&cfg), &opts);
        assert_eq!(full.cycles, again.cycles);
    }

    #[test]
    fn scrubbing_generates_background_reads() {
        let cfg = cfg();
        let wl = catalog::workload("lbm_m").unwrap();
        let mut opts = small_opts();
        opts.scrub_period_cycles = Some(20_000);
        let m = run_workload(&wl, &cfg, &SchemeSetup::fpb(&cfg), &opts);
        assert!(m.scrub_reads > 0, "scrubs must fire on a write-heavy run");
        // Scrub reads never count as demand reads.
        let plain = run_workload(&wl, &cfg, &SchemeSetup::fpb(&cfg), &small_opts());
        assert_eq!(plain.scrub_reads, 0);
        let ratio = m.pcm_reads as f64 / plain.pcm_reads as f64;
        assert!((0.9..1.1).contains(&ratio), "demand reads unchanged: {ratio}");
    }

    #[test]
    fn aggressive_scrubbing_adds_background_load() {
        // Aggressive scrubbing must generate far more background reads
        // than a mild period, while keeping the end-to-end run in the
        // same regime: scrub reads perturb write-burst onset, so the
        // exact cycle ordering vs an unscrubbed run is
        // trajectory-dependent in both directions.
        let cfg = cfg();
        let wl = catalog::workload("mum_m").unwrap();
        let mut opts = small_opts();
        opts.scrub_period_cycles = Some(2_000); // absurdly aggressive
        let scrub = run_workload(&wl, &cfg, &SchemeSetup::fpb(&cfg), &opts);
        let mut mild_opts = small_opts();
        mild_opts.scrub_period_cycles = Some(40_000);
        let mild = run_workload(&wl, &cfg, &SchemeSetup::fpb(&cfg), &mild_opts);
        assert!(
            scrub.scrub_reads > 3 * mild.scrub_reads,
            "aggressive {} vs mild {}",
            scrub.scrub_reads,
            mild.scrub_reads
        );
        let plain = run_workload(&wl, &cfg, &SchemeSetup::fpb(&cfg), &small_opts());
        let ratio = scrub.cycles as f64 / plain.cycles as f64;
        assert!(
            (0.8..1.6).contains(&ratio),
            "scrub {} vs plain {}",
            scrub.cycles,
            plain.cycles
        );
    }

    #[test]
    fn stepping_matches_run() {
        let cfg = cfg();
        let wl = catalog::workload("bwa_m").unwrap();
        let opts = small_opts();
        let batch = run_workload(&wl, &cfg, &SchemeSetup::fpb(&cfg), &opts);
        let mut sys = System::new(&wl, &cfg, &SchemeSetup::fpb(&cfg), &opts);
        let mut steps = 0u64;
        while sys.step() {
            steps += 1;
            assert!(sys.read_queue_len() <= cfg.queues.read_entries);
            assert!(sys.banks_with_writes().len() == 8);
        }
        assert!(steps > 100, "a real run takes many event rounds");
        let stepped = sys.finish();
        assert_eq!(stepped.cycles, batch.cycles);
        assert_eq!(stepped.pcm_writes, batch.pcm_writes);
    }

    #[test]
    fn low_traffic_workload_runs_fast() {
        let cfg = cfg();
        let wl = catalog::workload("xal_m").unwrap();
        let m = run_workload(&wl, &cfg, &SchemeSetup::dimm_chip(&cfg), &small_opts());
        // xal has almost no PCM traffic; CPI must stay near 1.
        assert!(m.cpi() < 5.0, "CPI = {}", m.cpi());
    }
}

