//! Admission: the between-events scheduling pass implementing the
//! paper's controller policy (reads first; writes only when no read is
//! waiting; a write burst — which blocks reads — whenever the write
//! queue fills, §5.1), plus write-task creation and the read-arrival
//! notification that drives the scheme's cancellation hook.

use fpb_core::WriteId;
use fpb_pcm::{
    CellMapping, ChangeSet, DimmGeometry, IterationSampler, LineWrite, WriteBufferPool,
};
use fpb_types::{Cycles, LineAddr, SimRng};

use crate::bank::BankState;
use crate::inspect::{EventSink, LifecycleEvent, PowerOp, SchemeHook};
use crate::request::{ReadTask, WriteTask};
use crate::scheme::{ReadArrivalAction, ReadArrivalCtx, Scheme, WriteStage};

use super::{System, SCRUB_CORE};

impl<S: Scheme, E: EventSink> System<S, E> {
    // ---- scheduling pass ----

    pub(super) fn schedule(&mut self) {
        // 1. Overflowed writes move into the queue as space frees.
        while self.wrq.len() < self.cfg.queues.write_entries {
            match self.overflow.pop_front() {
                Some(t) => self.wrq.push_back(t),
                None => break,
            }
        }
        // 2. Write-burst bookkeeping (§5.1: burst while the full queue
        // drains to empty).
        if self.wrq.len() >= self.cfg.queues.write_entries {
            self.burst = true;
        }
        if self.burst && self.wrq.is_empty() && self.overflow.is_empty() {
            self.burst = false;
        }
        // 3. Retry parked writes: token stalls, round boundaries, pauses.
        self.retry_parked();
        // 4. Pending reads enter the read queue as space frees.
        while self.rdq.len() < self.cfg.queues.read_entries {
            match self.pending_reads.pop_front() {
                Some(r) => {
                    self.note_read_arrival(r.bank);
                    self.rdq.push_back(r);
                }
                None => break,
            }
        }
        // 4b. Periodic drift scrubbing: re-read recently written lines so
        // their intermediate levels are refreshed before drifting across a
        // read boundary. Scrubs ride the normal read path but never block
        // a core.
        if let Some(period) = self.scrub_period {
            while self.now >= self.next_scrub_at {
                if let Some(line) = self.recent_writes.pop_front() {
                    self.pending_reads.push_back(ReadTask {
                        core: SCRUB_CORE,
                        line,
                        bank: line.bank_of(self.cfg.pcm.banks),
                        arrival: self.now,
                    });
                }
                self.next_scrub_at += Cycles::new(period);
            }
        }
        // 5. Reads first (never during a write burst).
        if !self.burst {
            let mut i = 0;
            while i < self.rdq.len() {
                let bank = self.rdq[i].bank.index();
                if self.banks[bank].state.accepts_read() {
                    if let Some(r) = self.rdq.remove(i) {
                        self.issue_read(r);
                    }
                } else {
                    i += 1;
                }
            }
        }
        // 6. Writes only when no read is waiting, or during a burst.
        let reads_waiting = !self.rdq.is_empty() || !self.pending_reads.is_empty();
        if self.burst || !reads_waiting {
            let mut i = 0;
            while i < self.wrq.len() {
                let bank = self.wrq[i].bank.index();
                let free =
                    self.banks[bank].state.accepts_write() && self.banks[bank].parked.is_none();
                if free {
                    if let Some(mut task) = self.wrq.remove(i) {
                        if self.power.try_admit(task.id, task.round_mut()) {
                            self.emit_power(task.id.get(), PowerOp::Admit, true);
                            if E::ENABLED {
                                let ev = LifecycleEvent::WriteAdmitted {
                                    id: task.id.get(),
                                    bank: task.bank.get(),
                                    at: self.now.get(),
                                    queue_delay: self.now.saturating_sub(task.arrival).get(),
                                };
                                self.emit(ev);
                            }
                            self.metrics.write_queue_delay +=
                                self.now.saturating_sub(task.arrival).get();
                            task.round_started_at = self.now;
                            self.issue_write(bank, task);
                            continue; // same index now holds the next entry
                        }
                        self.emit_power(task.id.get(), PowerOp::Admit, false);
                        // Not admissible: put it back and scan on
                        // (out-of-order write scheduling over the queue).
                        self.wrq.insert(i, task);
                    }
                }
                i += 1;
            }
        }
    }

    pub(super) fn retry_parked(&mut self) {
        for b in 0..self.banks.len() {
            // Only token-starved states are retried; timed states are
            // never taken out and put back (a replace-and-restore would
            // look like a fresh install to the event heap).
            let parked_kind = matches!(
                self.banks[b].state,
                BankState::WriteStalled { .. } | BankState::AwaitingRound { .. }
            );
            if parked_kind {
                let state = std::mem::replace(&mut self.banks[b].state, BankState::Idle);
                match state {
                    BankState::WriteStalled { task, since } => {
                        let ok = self.power.try_advance(task.id, task.round());
                        self.emit_power(task.id.get(), PowerOp::Advance, ok);
                        if ok {
                            self.transition(
                                task.id,
                                b,
                                WriteStage::TokenStalled,
                                WriteStage::Iterating,
                            );
                            self.start_iteration(b, task, false);
                        } else {
                            self.banks[b].state = BankState::WriteStalled { task, since };
                        }
                    }
                    BankState::AwaitingRound { mut task, since } => {
                        let ok = self.power.try_admit(task.id, task.round_mut());
                        self.emit_power(task.id.get(), PowerOp::Admit, ok);
                        if ok {
                            self.transition(
                                task.id,
                                b,
                                WriteStage::RoundPending,
                                WriteStage::Iterating,
                            );
                            task.round_started_at = self.now;
                            self.start_iteration(b, task, false);
                        } else {
                            self.banks[b].state = BankState::AwaitingRound { task, since };
                        }
                    }
                    other => {
                        self.banks[b].state = other;
                    }
                }
            }
            // Resume a paused write once its bank has no waiting reads.
            // A parked write resumes once its bank has no waiting reads —
            // or unconditionally during a write burst, when writes own the
            // DIMM and reads are blocked anyway (otherwise a paused write
            // and a burst-blocked read deadlock each other).
            if matches!(self.banks[b].state, BankState::Idle)
                && self.banks[b].parked.is_some()
                && (self.burst || !self.bank_has_waiting_read(b))
            {
                if let Some(task) = self.banks[b].parked.take() {
                    let ok = self.power.try_advance(task.id, task.round());
                    self.emit_power(task.id.get(), PowerOp::Advance, ok);
                    if ok {
                        self.transition(task.id, b, WriteStage::Paused, WriteStage::Iterating);
                        self.start_iteration(b, task, false);
                    } else {
                        self.banks[b].parked = Some(task);
                    }
                }
            }
        }
    }

    // ---- request creation ----

    pub(super) fn enqueue_write(&mut self, line: LineAddr, core: usize) {
        // Coalesce with a not-yet-issued write to the same line: the new
        // data replaces the queued data.
        let in_wrq = self.wrq.iter().position(|t| t.line == line);
        let in_ovf = self.overflow.iter().position(|t| t.line == line);
        if let Some(i) = in_wrq {
            let arrival = self.wrq[i].arrival;
            let task = self.make_task(line, core, arrival);
            let old = std::mem::replace(&mut self.wrq[i], task);
            if E::ENABLED {
                let ev = LifecycleEvent::WriteCoalesced {
                    old_id: old.id.get(),
                    new_id: self.wrq[i].id.get(),
                    line: line.get(),
                    at: self.now.get(),
                };
                self.emit(ev);
            }
            if !self.reference_alloc {
                self.pool.recycle_rounds(old.rounds);
            }
            return;
        }
        if let Some(i) = in_ovf {
            let arrival = self.overflow[i].arrival;
            let task = self.make_task(line, core, arrival);
            let old = std::mem::replace(&mut self.overflow[i], task);
            if E::ENABLED {
                let ev = LifecycleEvent::WriteCoalesced {
                    old_id: old.id.get(),
                    new_id: self.overflow[i].id.get(),
                    line: line.get(),
                    at: self.now.get(),
                };
                self.emit(ev);
            }
            if !self.reference_alloc {
                self.pool.recycle_rounds(old.rounds);
            }
            return;
        }
        let task = self.make_task(line, core, self.now);
        if self.wrq.len() < self.cfg.queues.write_entries {
            self.wrq.push_back(task);
            if self.wrq.len() >= self.cfg.queues.write_entries {
                self.burst = true;
            }
        } else {
            self.burst = true;
            self.overflow.push_back(task);
        }
    }

    /// Builds one round's [`LineWrite`], pooled or fresh. A free-standing
    /// helper (not `&mut self`) so it can borrow the splitter's round
    /// slices and the pool at the same time.
    #[allow(clippy::too_many_arguments)]
    fn build_round(
        pool: &mut WriteBufferPool,
        cells: &[(u32, fpb_pcm::MlcLevel)],
        geom: &DimmGeometry,
        mapping: CellMapping,
        truncation_ecc: Option<u32>,
        sampler: &IterationSampler,
        rng: &mut SimRng,
        reference_alloc: bool,
    ) -> LineWrite {
        let w = if reference_alloc {
            LineWrite::from_cells(cells, geom, mapping, sampler, rng, 1)
        } else {
            pool.build(cells, geom, mapping, sampler, rng, 1)
        };
        match truncation_ecc {
            Some(ecc) => w.with_truncation(ecc),
            None => w,
        }
    }

    pub(super) fn make_task(
        &mut self,
        line: LineAddr,
        core: usize,
        arrival: Cycles,
    ) -> WriteTask {
        // The scheme decides how cells map to chips and whether the write
        // may be truncated; both are fixed per scheme, so hoist them out
        // of the per-round loop.
        let mapping = self.setup.map_line();
        let truncation_ecc = self.setup.truncation_ecc();
        let profile = self.cores[core].data_profile();
        let mut changes = if self.reference_sampler {
            profile.sample_change_set_reference(self.cfg.pcm.line_bytes, &mut self.data_rng)
        } else {
            let mut cs = if self.reference_alloc {
                ChangeSet::empty()
            } else {
                self.pool.take_change_set()
            };
            profile.sample_change_set_into(self.cfg.pcm.line_bytes, &mut self.data_rng, &mut cs);
            cs
        };
        if let Some(wear) = self.wear.as_mut() {
            let offset = wear.offset_for_write(line, &mut self.data_rng);
            changes.rotate_in_place(offset, self.cfg.pcm.cells_per_line());
        }
        let chips = self.cfg.pcm.chips;
        let mut rounds = if self.reference_alloc {
            Vec::new()
        } else {
            self.pool.take_rounds()
        };
        match self.splitter.split_in(
            &changes,
            self.cap_total,
            self.cap_chip,
            mapping,
            chips,
        ) {
            None => rounds.push(Self::build_round(
                &mut self.pool,
                changes.cells(),
                &self.geom,
                mapping,
                truncation_ecc,
                &self.sampler,
                &mut self.write_rng,
                self.reference_alloc,
            )),
            Some(k) => {
                for i in 0..k {
                    rounds.push(Self::build_round(
                        &mut self.pool,
                        self.splitter.round(i),
                        &self.geom,
                        mapping,
                        truncation_ecc,
                        &self.sampler,
                        &mut self.write_rng,
                        self.reference_alloc,
                    ));
                }
            }
        }
        if !self.reference_alloc {
            self.pool.recycle_change_set(changes);
        }
        if self.degraded {
            // Degraded mode: a persistent brownout leaves too little power
            // for full MLC program-and-verify, so new writes fall back to
            // single-level programming (RESET pulses only).
            for w in rounds.iter_mut() {
                w.degrade_to_slc();
            }
            self.metrics.faults.degraded_writes += 1;
        }
        self.next_write_id += 1;
        if E::ENABLED {
            let ev = LifecycleEvent::WriteCreated {
                id: self.next_write_id,
                line: line.get(),
                bank: line.bank_of(self.cfg.pcm.banks).get(),
                at: self.now.get(),
                rounds: rounds.len() as u64,
                degraded: self.degraded,
            };
            self.emit(ev);
        }
        WriteTask {
            id: WriteId::new(self.next_write_id),
            line,
            bank: line.bank_of(self.cfg.pcm.banks),
            arrival,
            rounds,
            current_round: 0,
            pre_read_done: false,
            round_started_at: Cycles::ZERO,
            retries: 0,
            iterations_spent: 0,
            watchdog_tripped: false,
        }
    }

    pub(super) fn forward_from_write_queue(&self, line: LineAddr) -> bool {
        self.wrq.iter().chain(self.overflow.iter()).any(|t| t.line == line)
    }

    // ---- read-arrival hook ----

    /// A read entered the read queue for `bank`: if a write is in flight
    /// there, the scheme's read-arrival hook decides whether it is
    /// cancelled at the next iteration boundary (§6.4.5 write
    /// cancellation).
    pub(super) fn note_read_arrival(&mut self, bank: fpb_types::BankId) {
        let mut decided: Option<(u64, ReadArrivalAction)> = None;
        if let BankState::Writing {
            task,
            cancel_pending,
            in_pre_read,
            ..
        } = &mut self.banks[bank.index()].state
        {
            let progress = if *in_pre_read {
                0.0
            } else {
                task.round().progress()
            };
            let action = self.setup.on_read_arrival(ReadArrivalCtx { progress });
            if E::ENABLED {
                decided = Some((task.id.get(), action));
            }
            if action == ReadArrivalAction::CancelAtBoundary {
                *cancel_pending = true;
            }
        }
        if let Some((id, action)) = decided {
            let ev = LifecycleEvent::SchemeDecision {
                hook: SchemeHook::ReadArrival,
                action: (action == ReadArrivalAction::CancelAtBoundary) as u8,
                id,
                bank: bank.get(),
                at: self.now.get(),
            };
            self.emit(ev);
        }
    }

    pub(super) fn bank_has_waiting_read(&self, bank: usize) -> bool {
        self.rdq.iter().any(|r| r.bank.index() == bank)
            || self.pending_reads.iter().any(|r| r.bank.index() == bank)
    }
}
