//! Completion and reclaim: closing a round, the scheme's release hook
//! (worst-case draining for feedback-less controllers), verify-failure
//! recovery, cancellation, and buffer reclaim back into the pool.

use fpb_types::Cycles;

use crate::bank::BankState;
use crate::inspect::{EventSink, LifecycleEvent, PowerOp, SchemeHook};
use crate::request::WriteTask;
use crate::scheme::{ReleaseAction, ReleaseCtx, Scheme, WriteStage};

use super::System;

impl<S: Scheme, E: EventSink> System<S, E> {
    /// Closes the round that just completed its final iteration. The
    /// scheme's release hook may hold the bank until the assumed
    /// worst-case write time has elapsed (a controller without device
    /// feedback cannot observe early completion, §2.1.1).
    pub(super) fn finish_round(&mut self, bank: usize, task: WriteTask) {
        let ctx = ReleaseCtx {
            now: self.now,
            round_started_at: task.round_started_at,
        };
        let hold = self.setup.on_release(ctx) == ReleaseAction::HoldWorstCase;
        if E::ENABLED {
            let ev = LifecycleEvent::SchemeDecision {
                hook: SchemeHook::Release,
                action: hold as u8,
                id: task.id.get(),
                bank: bank as u8,
                at: self.now.get(),
            };
            self.emit(ev);
        }
        if hold {
            let until = task.round_started_at + self.worst_case_write_cycles(&task);
            if until > self.now {
                self.transition(task.id, bank, WriteStage::Iterating, WriteStage::Draining);
                self.set_bank_state(bank, BankState::Draining { task, until });
                return;
            }
        }
        self.finish_round_now(bank, task, WriteStage::Iterating);
    }

    /// Worst-case duration of the current round, as a controller without
    /// device feedback must assume it (§2.1.1): every cell takes the P&V
    /// bound.
    fn worst_case_write_cycles(&self, task: &WriteTask) -> Cycles {
        let resets = task.round().reset_groups() as u64;
        let sets = self.sampler.worst_case_iterations().saturating_sub(1) as u64;
        Cycles::new(
            resets * self.cfg.pcm.reset_cycles + sets * self.cfg.pcm.set_cycles,
        )
    }

    pub(super) fn finish_round_now(&mut self, bank: usize, mut task: WriteTask, from: WriteStage) {
        self.power.release(task.id);
        self.emit_power(task.id.get(), PowerOp::Release, true);
        // Device fault hook: the round's closing verify may fail (skipped
        // when the watchdog already force-closed the round — it must free
        // the bank unconditionally).
        if !task.watchdog_tripped {
            if let Some(inj) = self.faults.as_mut() {
                if inj.round_fails_verify(task.line) {
                    self.handle_verify_failure(bank, task, from);
                    return;
                }
            }
        }
        self.metrics.write_rounds += 1;
        if self.metrics.per_chip_cells.is_empty() {
            self.metrics.per_chip_cells = vec![0; self.cfg.pcm.chips as usize];
        }
        let per_chip = task.round().per_chip_changed();
        self.endurance.record_write(task.line, &per_chip);
        let stuck_before = self.faults.as_ref().map(|inj| inj.stuck_marked());
        if let Some(inj) = self.faults.as_mut() {
            inj.note_write(task.line, &self.endurance);
        }
        if E::ENABLED {
            if let Some(before) = stuck_before {
                // The injector marks at most one stuck line per write;
                // a nonzero delta is the recorded mark.
                let marked = self
                    .faults
                    .as_ref()
                    .map(|inj| inj.stuck_marked() - before)
                    .unwrap_or(0);
                if marked > 0 {
                    let ev = LifecycleEvent::StuckMarked {
                        lines: marked,
                        at: self.now.get(),
                    };
                    self.emit(ev);
                }
            }
        }
        if E::ENABLED {
            let ev = LifecycleEvent::RoundClosed {
                id: task.id.get(),
                line: task.line.get(),
                bank: bank as u8,
                at: self.now.get(),
                cells: task.round().total_changed() as u64,
                truncated: task.round().was_truncated(),
                final_round: task.current_round + 1 >= task.rounds.len(),
                per_chip: per_chip.clone(),
            };
            self.emit(ev);
        }
        for (acc, c) in self.metrics.per_chip_cells.iter_mut().zip(per_chip) {
            *acc += c as u64;
        }
        // Cells are programmed when their round closes, so the global and
        // per-chip tallies accumulate at the same point — the two always
        // agree even when a later round of the same task is still in
        // flight at the end of the run.
        self.metrics.cells_written += task.round().total_changed() as u64;
        if task.round().was_truncated() {
            self.metrics.truncations += 1;
        }
        // The round closed: its recovery bookkeeping starts fresh.
        task.retries = 0;
        task.iterations_spent = 0;
        task.watchdog_tripped = false;
        if task.next_round() {
            self.transition(task.id, bank, from, WriteStage::RoundPending);
            self.banks[bank].state = BankState::AwaitingRound {
                task,
                since: self.now,
            };
        } else {
            self.transition(task.id, bank, from, WriteStage::Done);
            self.metrics.pcm_writes += 1;
            if self.scrub_period.is_some() {
                if self.recent_writes.len() >= 4096 {
                    self.recent_writes.pop_front();
                }
                self.recent_writes.push_back(task.line);
            }
            self.banks[bank].state = BankState::Idle;
            if !self.reference_alloc {
                self.pool.recycle_rounds(task.rounds);
            }
        }
    }

    /// A round's closing verify failed. Bounded recovery: retry the round
    /// after an exponential backoff; once retries are exhausted, remap the
    /// line to a spare and rewrite the round in SLC fallback mode (RESET
    /// pulses only — single-level programming completes even on weak
    /// cells).
    fn handle_verify_failure(&mut self, bank: usize, mut task: WriteTask, from: WriteStage) {
        self.transition(task.id, bank, from, WriteStage::Backoff);
        let fcfg = self.cfg.faults.clone();
        if task.retries < fcfg.max_retries {
            task.retries += 1;
            self.metrics.faults.retries += 1;
            if E::ENABLED {
                let ev = LifecycleEvent::VerifyFailed {
                    id: task.id.get(),
                    line: task.line.get(),
                    at: self.now.get(),
                    remapped: false,
                    retries: u64::from(task.retries),
                };
                self.emit(ev);
            }
            // Doubling backoff, shift-clamped so u8::MAX retries cannot
            // overflow the cycle math.
            let backoff = fcfg
                .retry_backoff_cycles
                .saturating_mul(1u64 << (u32::from(task.retries) - 1).min(16))
                .max(1);
            task.round_mut().restart();
            self.set_bank_state(
                bank,
                BankState::Backoff {
                    task,
                    until: self.now + Cycles::new(backoff),
                },
            );
        } else {
            if let Some(inj) = self.faults.as_mut() {
                inj.remap(task.line);
            }
            self.metrics.faults.remaps += 1;
            self.metrics.faults.slc_fallbacks += 1;
            if E::ENABLED {
                let ev = LifecycleEvent::VerifyFailed {
                    id: task.id.get(),
                    line: task.line.get(),
                    at: self.now.get(),
                    remapped: true,
                    retries: u64::from(task.retries),
                };
                self.emit(ev);
            }
            task.retries = 0;
            task.round_mut().restart();
            task.round_mut().degrade_to_slc();
            let until = self.now + Cycles::new(fcfg.retry_backoff_cycles.max(1));
            self.set_bank_state(bank, BankState::Backoff { task, until });
        }
    }

    /// Cancels an in-flight write at an iteration boundary: tokens are
    /// released, the round restarts from scratch, and the task returns to
    /// the head of the write queue.
    pub(super) fn cancel_write(&mut self, mut task: WriteTask) {
        self.power.release(task.id);
        self.emit_power(task.id.get(), PowerOp::Release, true);
        task.round_mut().restart();
        self.metrics.cancellations += 1;
        self.wrq.push_front(task);
    }
}
