//! Iteration scheduling: per-event processing on banks and cores. Bank
//! events advance in-flight writes one iteration at a time; at every
//! iteration boundary the scheme's [`Scheme::on_iteration`] hook decides
//! whether the write keeps the bank or yields it to waiting reads, and
//! [`Scheme::on_admit`] decides whether a freshly admitted write charges
//! the IPM comparison read first.

use fpb_pcm::{IterKind, LineWrite};
use fpb_types::{Cycles, LineAddr};

use crate::bank::BankState;
use crate::inspect::{EventSink, LifecycleEvent, PowerOp, SchemeHook};
use crate::request::{ReadTask, WriteTask};
use crate::scheme::{AdmitAction, AdmitCtx, IterationAction, IterationCtx, Scheme, WriteStage};

use super::{System, SCRUB_CORE};

impl<S: Scheme, E: EventSink> System<S, E> {
    /// Handles the due event on bank `b` (caller checked due-ness).
    pub(super) fn process_bank_event(&mut self, b: usize) {
        let state = std::mem::replace(&mut self.banks[b].state, BankState::Idle);
        match state {
            BankState::Reading { core, .. } => {
                if E::ENABLED {
                    let ev = LifecycleEvent::ReadDone {
                        bank: b as u8,
                        at: self.now.get(),
                        scrub: core == SCRUB_CORE,
                    };
                    self.emit(ev);
                }
                if core == SCRUB_CORE {
                    self.metrics.scrub_reads += 1;
                } else {
                    self.metrics.pcm_reads += 1;
                    self.cores[core].blocked = false;
                    let now = self.now;
                    let target = self.target_instr;
                    self.cores[core].schedule_next(now, target);
                    self.push_core_event(core);
                }
            }
            BankState::Writing {
                mut task,
                in_pre_read,
                cancel_pending,
                ..
            } => {
                if in_pre_read {
                    // Comparison read done; the admitted first
                    // iteration starts now.
                    self.transition(task.id, b, WriteStage::PreRead, WriteStage::Iterating);
                    self.start_iteration(b, task, cancel_pending);
                    return;
                }
                task.round_mut().advance();
                task.iterations_spent = task.iterations_spent.saturating_add(1);
                let wd = self.cfg.faults.watchdog_iterations;
                if self.faults.is_some()
                    && wd > 0
                    && !task.round().is_complete()
                    && task.iterations_spent >= wd
                {
                    // Watchdog: a round that burned this many
                    // iterations (retry storms on a persistently
                    // failing line) is force-closed so the bank and
                    // its tokens cannot be held hostage.
                    task.watchdog_tripped = true;
                    self.metrics.faults.watchdog_trips += 1;
                    if E::ENABLED {
                        let ev = LifecycleEvent::WatchdogTripped {
                            id: task.id.get(),
                            bank: b as u8,
                            at: self.now.get(),
                        };
                        self.emit(ev);
                    }
                    self.finish_round(b, task);
                    return;
                }
                if task.round().is_complete() {
                    self.finish_round(b, task);
                } else if cancel_pending {
                    self.transition(task.id, b, WriteStage::Iterating, WriteStage::Queued);
                    self.cancel_write(task);
                } else {
                    let pause = self.pause_requested(b);
                    if E::ENABLED {
                        let ev = LifecycleEvent::SchemeDecision {
                            hook: SchemeHook::Iteration,
                            action: pause as u8,
                            id: task.id.get(),
                            bank: b as u8,
                            at: self.now.get(),
                        };
                        self.emit(ev);
                    }
                    if pause {
                        self.transition(task.id, b, WriteStage::Iterating, WriteStage::Paused);
                        self.power.release(task.id);
                        self.emit_power(task.id.get(), PowerOp::Release, true);
                        self.metrics.pauses += 1;
                        self.banks[b].parked = Some(task);
                    } else {
                        let ok = self.power.try_advance(task.id, task.round());
                        self.emit_power(task.id.get(), PowerOp::Advance, ok);
                        if ok {
                            self.transition(
                                task.id,
                                b,
                                WriteStage::Iterating,
                                WriteStage::Iterating,
                            );
                            self.start_iteration(b, task, false);
                        } else {
                            self.transition(
                                task.id,
                                b,
                                WriteStage::Iterating,
                                WriteStage::TokenStalled,
                            );
                            self.banks[b].state = BankState::WriteStalled {
                                task,
                                since: self.now,
                            };
                        }
                    }
                }
            }
            BankState::Draining { task, .. } => {
                // The assumed worst-case time has elapsed; the
                // feedback-less controller finally frees the bank.
                self.finish_round_now(b, task, WriteStage::Draining);
            }
            BankState::Backoff { mut task, .. } => {
                // Backoff expired: re-admit the restarted round.
                let ok = self.power.try_admit(task.id, task.round_mut());
                self.emit_power(task.id.get(), PowerOp::Admit, ok);
                if ok {
                    self.transition(task.id, b, WriteStage::Backoff, WriteStage::Iterating);
                    task.round_started_at = self.now;
                    self.start_iteration(b, task, false);
                } else {
                    self.transition(task.id, b, WriteStage::Backoff, WriteStage::RoundPending);
                    self.banks[b].state = BankState::AwaitingRound {
                        task,
                        since: self.now,
                    };
                }
            }
            other => {
                // Stalled/awaiting states carry no timed event.
                self.banks[b].state = other;
            }
        }
    }

    /// Consults the scheme's iteration hook for bank `b`. The context
    /// hands the hook lazy access to the read queues, preserving the hot
    /// path: the bank scan only runs when a scheme actually asks.
    fn pause_requested(&self, b: usize) -> bool {
        let ctx = IterationCtx::new(b, self.burst, &self.rdq, &self.pending_reads);
        self.setup.on_iteration(&ctx) == IterationAction::Pause
    }

    /// Reference stepper: visit every core and drain its ready ops.
    pub(super) fn process_core_arrivals(&mut self) {
        for ci in 0..self.cores.len() {
            self.process_core(ci);
        }
    }

    /// Drains core `ci`'s consecutive ready operations, then registers
    /// its next (future) arrival. A no-op for a core that is not ready.
    pub(super) fn process_core(&mut self, ci: usize) {
        loop {
            let ready = !self.cores[ci].done
                && !self.cores[ci].blocked
                && self.cores[ci].next_op.is_some()
                && self.cores[ci].ready_at <= self.now;
            if !ready {
                break;
            }
            // The ready check above guarantees a pending op; a bare
            // `None` would only mean scheduling skew, so stop draining.
            let Some(op) = self.cores[ci].take_op() else {
                break;
            };
            let outcome = self.cores[ci].llc_access(op.addr, op.is_write);
            for wb in outcome.writebacks {
                self.enqueue_write(LineAddr::new(wb), ci);
            }
            if op.is_write && outcome.fill.is_none() {
                // An L2 write-back into the LLC: non-blocking.
                let t = self.now + Cycles::new(1);
                let target = self.target_instr;
                self.cores[ci].schedule_next(t, target);
            } else if let Some(line) = outcome.fill {
                let line = LineAddr::new(line);
                if self.forward_from_write_queue(line) {
                    let t = self.now + Cycles::new(self.cfg.queues.mc_to_bank_cycles);
                    let target = self.target_instr;
                    self.cores[ci].schedule_next(t, target);
                } else {
                    self.cores[ci].blocked = true;
                    self.pending_reads.push_back(ReadTask {
                        core: ci,
                        line,
                        bank: line.bank_of(self.cfg.pcm.banks),
                        arrival: self.now,
                    });
                }
            } else {
                let hit_cycles = match outcome.level {
                    fpb_cache::HitLevel::L1 => self.cfg.cache.l1_hit_cycles,
                    fpb_cache::HitLevel::L2 => self.cfg.cache.l2_hit_cycles,
                    _ => self.cfg.cache.l3_hit_cycles,
                };
                let t = self.now + Cycles::new(hit_cycles);
                let target = self.target_instr;
                self.cores[ci].schedule_next(t, target);
            }
        }
        self.push_core_event(ci);
    }

    // ---- issue paths ----

    pub(super) fn issue_read(&mut self, r: ReadTask) {
        let start = self.now.max(self.bus_free_at);
        self.bus_free_at = start + Cycles::new(self.cfg.queues.bus_cycles_per_line);
        let done_at = start
            + Cycles::new(self.cfg.queues.mc_to_bank_cycles)
            + Cycles::new(self.cfg.pcm.read_cycles);
        if r.core != SCRUB_CORE {
            self.metrics.read_latency_sum += done_at.saturating_sub(r.arrival).get();
        }
        if E::ENABLED {
            let scrub = r.core == SCRUB_CORE;
            let ev = LifecycleEvent::ReadIssued {
                core: if scrub { 0 } else { r.core as u64 },
                bank: r.bank.get(),
                at: self.now.get(),
                latency: done_at.saturating_sub(r.arrival).get(),
                scrub,
            };
            self.emit(ev);
        }
        self.set_bank_state(
            r.bank.index(),
            BankState::Reading {
                done_at,
                core: r.core,
            },
        );
    }

    /// Issues a freshly admitted write task (round 0) to its bank. The
    /// scheme's admission hook decides whether the bridge chip's
    /// comparison read runs first (IPM) or programming starts at once.
    pub(super) fn issue_write(&mut self, bank: usize, mut task: WriteTask) {
        let start = self
            .now
            .max(self.bus_free_at)
            + Cycles::new(self.cfg.queues.mc_to_bank_cycles);
        self.bus_free_at =
            self.now.max(self.bus_free_at) + Cycles::new(self.cfg.queues.bus_cycles_per_line);
        let admit = self.setup.on_admit(AdmitCtx {
            pre_read_done: task.pre_read_done,
        });
        if E::ENABLED {
            let ev = LifecycleEvent::SchemeDecision {
                hook: SchemeHook::Admit,
                action: (admit == AdmitAction::PreRead) as u8,
                id: task.id.get(),
                bank: bank as u8,
                at: self.now.get(),
            };
            self.emit(ev);
        }
        if admit == AdmitAction::PreRead {
            self.transition(task.id, bank, WriteStage::Queued, WriteStage::PreRead);
            task.pre_read_done = true;
            self.set_bank_state(
                bank,
                BankState::Writing {
                    iter_done_at: start + Cycles::new(self.cfg.pcm.compare_read_cycles),
                    task,
                    in_pre_read: true,
                    cancel_pending: false,
                },
            );
        } else {
            self.transition(task.id, bank, WriteStage::Queued, WriteStage::Iterating);
            let dur = self.iteration_cycles(task.round());
            self.set_bank_state(
                bank,
                BankState::Writing {
                    iter_done_at: start + dur,
                    task,
                    in_pre_read: false,
                    cancel_pending: false,
                },
            );
        }
    }

    /// Starts the next iteration of an already-admitted round.
    pub(super) fn start_iteration(&mut self, bank: usize, task: WriteTask, cancel_pending: bool) {
        let dur = self.iteration_cycles(task.round());
        self.set_bank_state(
            bank,
            BankState::Writing {
                iter_done_at: self.now + dur,
                task,
                in_pre_read: false,
                cancel_pending,
            },
        );
    }

    /// Duration of the round's next iteration. The caller guarantees the
    /// round is incomplete; if that invariant is ever broken, the SET
    /// pulse time is a safe fallback (the completed round closes at the
    /// next bank event rather than bringing the simulation down).
    pub(super) fn iteration_cycles(&self, write: &LineWrite) -> Cycles {
        match write.next_demand() {
            Some(d) => match d.kind {
                IterKind::Reset { .. } => Cycles::new(self.cfg.pcm.reset_cycles),
                IterKind::Set { .. } => Cycles::new(self.cfg.pcm.set_cycles),
            },
            None => Cycles::new(self.cfg.pcm.set_cycles),
        }
    }
}
