//! Event stepping: the lazily-invalidated event heap and its reference
//! scan twin. Both visit due sources in the same order (banks ascending,
//! then cores ascending), so the two steppers are bit-for-bit identical.

use std::cmp::Reverse;

use fpb_core::WriteId;
use fpb_types::Cycles;

use crate::inspect::{EventSink, LifecycleEvent, PowerOp};
use crate::scheme::{Scheme, WriteLifecycle, WriteStage};

use super::{BankState, System};

impl<S: Scheme, E: EventSink> System<S, E> {
    // ---- lifecycle-event emission ----
    //
    // Every helper below is guarded by `E::ENABLED`, so with the default
    // `NullSink` the emission sites (including the event construction and
    // any allocation it implies) const-fold to nothing.

    /// Emits one lifecycle event. Callers construct the event inside
    /// their own `E::ENABLED` guard.
    #[inline]
    pub(super) fn emit(&mut self, ev: LifecycleEvent) {
        self.sink.emit(ev);
    }

    /// Checks a write-lifecycle transition (debug builds) and records it
    /// as a [`LifecycleEvent::Stage`]. Replaces the stage modules' bare
    /// `WriteLifecycle::debug_check` calls: the event stream is exactly
    /// the checked transition set.
    #[inline]
    pub(super) fn transition(
        &mut self,
        id: WriteId,
        bank: usize,
        from: WriteStage,
        to: WriteStage,
    ) {
        WriteLifecycle::debug_check(from, to);
        if E::ENABLED {
            let ev = LifecycleEvent::Stage {
                id: id.get(),
                bank: bank as u8,
                at: self.now.get(),
                from,
                to,
            };
            self.sink.emit(ev);
        }
    }

    /// Records a power-accounting snapshot taken right after a
    /// [`fpb_core::PowerManager`] call (see [`LifecycleEvent::Power`]:
    /// absolute post-call stats, because outstanding/peak are not
    /// additive). `id` is 0 for brownout edges.
    #[inline]
    pub(super) fn emit_power(&mut self, id: u64, op: PowerOp, ok: bool) {
        if E::ENABLED {
            let ev = LifecycleEvent::Power {
                id,
                op,
                ok,
                at: self.now.get(),
                stats: self.power.stats().to_raw(),
                audit: self.power.audit_violations(),
            };
            self.sink.emit(ev);
        }
    }

    /// Bitmask form of [`System::banks_with_writes`] over the first 64
    /// banks (the standard DIMM has 8) — what a step snapshot records.
    pub(super) fn bank_write_mask(&self) -> u64 {
        let mut mask = 0u64;
        for (i, b) in self.banks.iter().take(64).enumerate() {
            if b.state.has_write() || b.parked.is_some() {
                mask |= 1 << i;
            }
        }
        mask
    }

    /// Installs a bank state, registering its timed event (if any) in
    /// the event heap. Every site that creates a *new* timed state must
    /// go through this; plain assignment is reserved for restoring a
    /// state unchanged (its event is already registered).
    pub(super) fn set_bank_state(&mut self, bank: usize, state: BankState) {
        if !self.reference_stepper {
            if let Some(t) = state.next_event() {
                self.events.push(Reverse((t, bank as u32)));
            }
        }
        self.banks[bank].state = state;
    }

    /// Registers core `ci`'s next arrival in the event heap (a no-op if
    /// the core has nothing pending).
    pub(super) fn push_core_event(&mut self, ci: usize) {
        if self.reference_stepper {
            return;
        }
        let c = &self.cores[ci];
        if !c.done && !c.blocked && c.next_op.is_some() {
            let src = (self.banks.len() + ci) as u32;
            self.events.push(Reverse((c.ready_at, src)));
        }
    }

    /// Heap-driven replacement for the per-step
    /// [`System::process_bank_events`] + [`System::process_core_arrivals`]
    /// scans: only sources with a due heap entry are visited. Processing
    /// order is banks ascending, then cores ascending — identical to the
    /// scans — and a second drain picks up cores made ready at exactly
    /// `now` by a bank completion (the scan's core pass runs after its
    /// bank pass and would see them too). Bank events that appear at
    /// exactly `now` during processing are deferred to the next step,
    /// again matching the scan.
    pub(super) fn process_due_events(&mut self) {
        let nbanks = self.banks.len() as u32;
        let mut due = std::mem::take(&mut self.due_scratch);
        let mut deferred = std::mem::take(&mut self.deferred_scratch);
        due.clear();
        deferred.clear();
        while let Some(&Reverse((t, src))) = self.events.peek() {
            if t > self.now {
                break;
            }
            self.events.pop();
            due.push(src);
        }
        due.sort_unstable();
        due.dedup();
        let core_start = due.partition_point(|&s| s < nbanks);
        for &src in &due[..core_start] {
            let b = src as usize;
            // Lazy invalidation: skip entries whose bank has moved on.
            if matches!(self.banks[b].state.next_event(), Some(t) if t <= self.now) {
                self.process_bank_event(b);
            }
        }
        while let Some(&Reverse((t, src))) = self.events.peek() {
            if t > self.now {
                break;
            }
            self.events.pop();
            if src < nbanks {
                deferred.push((t, src));
            } else {
                due.push(src);
            }
        }
        due[core_start..].sort_unstable();
        let mut prev = u32::MAX;
        for &src in &due[core_start..] {
            if src == prev {
                continue;
            }
            prev = src;
            self.process_core((src - nbanks) as usize);
        }
        for &(t, src) in &deferred {
            self.events.push(Reverse((t, src)));
        }
        due.clear();
        deferred.clear();
        self.due_scratch = due;
        self.deferred_scratch = deferred;
    }

    /// Reference stepper: visit every bank and process the due ones.
    pub(super) fn process_bank_events(&mut self) {
        for b in 0..self.banks.len() {
            let due = matches!(self.banks[b].state.next_event(), Some(t) if t <= self.now);
            if due {
                self.process_bank_event(b);
            }
        }
    }

    /// Reference stepper: scan every bank and core for the earliest
    /// pending event.
    pub(super) fn next_event_time(&self) -> Option<Cycles> {
        let bank_next = self
            .banks
            .iter()
            .filter_map(|b| b.state.next_event())
            .min();
        let core_next = self
            .cores
            .iter()
            .filter(|c| !c.done && !c.blocked && c.next_op.is_some())
            .map(|c| c.ready_at)
            .min();
        let next = match (bank_next, core_next) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.merge_global_events(next)
    }

    /// Heap stepper: the earliest *live* heap entry is the earliest
    /// pending bank/core event. Stale entries (their source has since
    /// scheduled a different time, or nothing at all) are popped on the
    /// way; every live event always has an entry at its exact time, so
    /// after cleanup the heap minimum equals the scan minimum.
    pub(super) fn next_event_time_heap(&mut self) -> Option<Cycles> {
        let nbanks = self.banks.len() as u32;
        let mut next = None;
        while let Some(&Reverse((t, src))) = self.events.peek() {
            let live = if src < nbanks {
                self.banks[src as usize].state.next_event() == Some(t)
            } else {
                let c = &self.cores[(src - nbanks) as usize];
                !c.done && !c.blocked && c.next_op.is_some() && c.ready_at == t
            };
            if live {
                next = Some(t);
                break;
            }
            self.events.pop();
        }
        self.merge_global_events(next)
    }

    /// Folds the stepper-independent event sources (scrub ticks,
    /// brownout window edges) into `next` and clamps time forward.
    fn merge_global_events(&self, mut next: Option<Cycles>) -> Option<Cycles> {
        // A pending scrub candidate makes the scrub tick a real event.
        if self.scrub_period.is_some() && !self.recent_writes.is_empty() {
            next = Some(match next {
                Some(t) => t.min(self.next_scrub_at),
                None => self.next_scrub_at,
            });
        }
        // Brownout window edges are real events: tokens withheld at the
        // start must be restored at the end, and a write refused under the
        // shrunk budget only becomes admissible once the window closes —
        // skipping the edge would deadlock it.
        if let Some(inj) = self.faults.as_ref() {
            if let Some(edge) = inj.next_brownout_boundary(self.now) {
                next = Some(match next {
                    Some(t) => t.min(edge),
                    None => edge,
                });
            }
        }
        next.map(|t| t.max(self.now + Cycles::new(1)))
    }
}
