//! The cycle-driven simulation engine.
//!
//! Event-driven replay: time jumps between the earliest pending events
//! (bank completions and core arrivals). Between events the engine runs a
//! scheduling pass implementing the paper's controller policy: reads
//! first; writes only when no read is waiting; a write burst — which
//! blocks reads — whenever the write queue fills (§5.1); token admission
//! through the [`PowerManager`] for every write iteration.
//!
//! The engine is decomposed into lifecycle-stage modules, each an
//! `impl<S: Scheme> System<S>` block over the shared state below:
//!
//! - [`admission`]: the scheduling pass — queue management, burst
//!   bookkeeping, task creation, round splitting, write admission.
//! - [`iteration`]: per-event processing — iteration boundaries, IPM
//!   pre-reads, pausing/stall decisions, core-side arrivals.
//! - [`power`]: round-cap derivation, brownout windows, time accounting.
//! - [`completion`]: round convergence, worst-case draining, verify
//!   failure recovery, cancellation, bank reclaim.
//! - [`events`]: the event-heap stepper and its reference scan twin.
//!
//! Scheme behavior enters only at stage boundaries, through the
//! [`Scheme`] lifecycle hooks; the stages themselves are scheme-agnostic
//! mechanism, checked against the [`crate::scheme::WriteLifecycle`]
//! transition table in debug builds.

mod admission;
mod completion;
mod events;
mod iteration;
mod power;

#[cfg(test)]
mod tests;

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use fpb_core::PowerManager;
use fpb_pcm::{
    DimmGeometry, EnduranceTracker, FaultInjector, IntraLineWearLeveler, IterationSampler,
    WriteBufferPool,
};
use fpb_trace::Workload;
use fpb_types::{Cycles, CoreId, LineAddr, SimError, SimRng, SystemConfig};

use crate::bank::BankState;
use crate::frontend::CoreState;
use crate::inspect::{EventSink, LifecycleEvent, NullSink};
use crate::metrics::Metrics;
use crate::request::{ReadTask, RoundSplitter, WriteTask};
use crate::scheme::{Scheme, SchemeSetup};

/// Run-scale options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOptions {
    /// Instructions each core retires before the run ends. The paper runs
    /// 1 B instructions; the benches here default to a reduced,
    /// shape-preserving budget.
    pub instructions_per_core: u64,
    /// Untimed LLC warm-up generator operations per core before
    /// measurement, on top of the deterministic prefill and hot-tier walk
    /// (`None` = automatic).
    pub warmup_accesses: Option<u64>,
    /// Run the full L1/L2/L3 cache stack per core instead of the
    /// LLC-level front end (slower; for full-fidelity studies).
    pub full_hierarchy: bool,
    /// Drift-scrub period in cycles: every period the controller issues
    /// background scrub reads over recently written lines (see
    /// [`fpb_pcm::DriftModel::scrub_interval_secs`] for deriving a period
    /// from a drift model). `None` disables scrubbing. Realistic periods
    /// are enormous (minutes); small values exist for stress testing.
    pub scrub_period_cycles: Option<u64>,
    /// Run the power manager's token-conservation auditor after every
    /// grant and release: violations are counted in
    /// [`Metrics::faults`]`.audit_violations`. Off by default (the audit
    /// re-sums every outstanding grant, which costs time).
    pub audit_ledger: bool,
    /// Use the original O(banks + cores) scan stepper instead of the
    /// event heap. The two are bit-for-bit identical; the scan survives
    /// as the differential-testing reference and the `fpb bench`
    /// pre-optimization baseline.
    pub reference_stepper: bool,
    /// Allocate fresh write buffers per line write instead of recycling
    /// through the [`WriteBufferPool`]. Bit-for-bit identical to the
    /// pooled path; kept as the differential-testing reference.
    pub reference_alloc: bool,
    /// Sample changed bits with the original per-bit Bernoulli loop
    /// instead of the word-level mask sampler. The two samplers are
    /// distributionally equivalent but consume the RNG differently, so
    /// this flag (unlike the other two) changes simulated results; it
    /// exists for calibration comparisons and the pre-optimization
    /// benchmark baseline.
    pub reference_sampler: bool,
}

impl SimOptions {
    /// Creates options with the given instruction budget and automatic
    /// warm-up.
    pub fn with_instructions(instructions_per_core: u64) -> Self {
        SimOptions {
            instructions_per_core,
            warmup_accesses: None,
            full_hierarchy: false,
            scrub_period_cycles: None,
            audit_ledger: false,
            reference_stepper: false,
            reference_alloc: false,
            reference_sampler: false,
        }
    }

    /// All three reference knobs at once: the pre-optimization write
    /// path (per-bit sampling, fresh allocation, scan stepper), used by
    /// `fpb bench` as the speedup baseline.
    pub fn reference_path(mut self) -> Self {
        self.reference_stepper = true;
        self.reference_alloc = true;
        self.reference_sampler = true;
        self
    }
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions::with_instructions(1_000_000)
    }
}

/// One PCM bank plus its write-pausing parking spot.
#[derive(Debug)]
struct Bank {
    state: BankState,
    /// A write parked by write pausing so reads can be served.
    parked: Option<WriteTask>,
}

/// The simulated system: cores, controller, banks, power manager.
///
/// Generic over the [`Scheme`] driving it; defaults to the standard
/// [`SchemeSetup`] composition, so `System` without parameters keeps
/// meaning what it always did. Use [`run_workload`] unless you need
/// step-level control.
///
/// Also generic over the [`EventSink`] receiving lifecycle events;
/// defaults to [`NullSink`], whose disabled `ENABLED` constant folds
/// every emission site out of the hot path. Pass a live sink through
/// [`System::with_cores_and_sink`] (or [`run_workload_recorded`]) to
/// capture the run's full event stream for `fpb inspect`.
#[derive(Debug)]
pub struct System<S: Scheme = SchemeSetup, E: EventSink = NullSink> {
    cfg: SystemConfig,
    setup: S,
    cores: Vec<CoreState>,
    banks: Vec<Bank>,
    rdq: VecDeque<ReadTask>,
    pending_reads: VecDeque<ReadTask>,
    wrq: VecDeque<WriteTask>,
    overflow: VecDeque<WriteTask>,
    power: PowerManager,
    geom: DimmGeometry,
    sampler: IterationSampler,
    wear: Option<IntraLineWearLeveler>,
    data_rng: SimRng,
    write_rng: SimRng,
    now: Cycles,
    burst: bool,
    bus_free_at: Cycles,
    next_write_id: u64,
    target_instr: u64,
    cap_total: Option<u64>,
    cap_chip: Option<u64>,
    endurance: EnduranceTracker,
    /// Ring of recently written lines, the scrub candidates (drifting
    /// intermediate levels live where writes happened).
    recent_writes: VecDeque<LineAddr>,
    scrub_period: Option<u64>,
    next_scrub_at: Cycles,
    /// Fault injector, present only when any fault knob is nonzero — a
    /// fully disabled fault config leaves the engine bit-for-bit identical
    /// to a build without the fault subsystem.
    faults: Option<FaultInjector>,
    /// Reusable round-splitting buffers (every dirty eviction is split;
    /// the grouping scratch must not be reallocated per write).
    splitter: RoundSplitter,
    /// Free-list of write-buffer storage recycled from completed writes
    /// (the write path allocates nothing once the pool is primed).
    pool: WriteBufferPool,
    /// Pending-event min-heap keyed by `(time, source)`, where source ids
    /// `0..banks` are banks and `banks..banks+cores` are cores. Entries
    /// are lazily invalidated: one is live only while its source still
    /// schedules an event at exactly that time.
    events: BinaryHeap<Reverse<(Cycles, u32)>>,
    /// Scratch for the sources due in one step (sorted + deduped so the
    /// processing order matches the reference scan exactly).
    due_scratch: Vec<u32>,
    /// Scratch for bank events that appear at exactly `now` while a step
    /// is already processing (deferred to the next step, as the scan
    /// defers them).
    deferred_scratch: Vec<(Cycles, u32)>,
    reference_stepper: bool,
    reference_alloc: bool,
    reference_sampler: bool,
    /// When the current brownout window began (drives degraded mode).
    brownout_since: Option<Cycles>,
    /// Degraded mode: brownout persisted past the configured threshold, so
    /// new writes are issued in SLC fallback until the window ends.
    degraded: bool,
    metrics: Metrics,
    /// Lifecycle-event receiver (the zero-cost [`NullSink`] by default).
    sink: E,
}

/// Sentinel "core" index marking a background scrub read (no core to
/// wake on completion).
const SCRUB_CORE: usize = usize::MAX;

/// Simulates `workload` on `cfg` under `setup` and returns the metrics.
///
/// Deterministic: the same arguments always produce the same result.
///
/// # Examples
///
/// ```
/// use fpb_sim::{run_workload, SchemeSetup, SimOptions};
/// use fpb_trace::catalog;
/// use fpb_types::SystemConfig;
///
/// let cfg = SystemConfig::default();
/// let wl = catalog::workload("xal_m").unwrap();
/// let opts = SimOptions::with_instructions(30_000);
/// let m = run_workload(&wl, &cfg, &SchemeSetup::dimm_chip(&cfg), &opts);
/// assert_eq!(m.instructions_per_core, 30_000);
/// ```
///
/// # Panics
///
/// Panics if the configuration is invalid.
pub fn run_workload<S: Scheme + Clone>(
    workload: &Workload,
    cfg: &SystemConfig,
    setup: &S,
    opts: &SimOptions,
) -> Metrics {
    System::new(workload, cfg, setup, opts).run()
}

/// Like [`run_workload`] but returning engine failures (scheduling
/// deadlocks, config errors) as [`SimError`] instead of panicking — the
/// API for callers that must degrade gracefully, e.g. the CLI.
///
/// # Examples
///
/// ```
/// use fpb_sim::{try_run_workload, SchemeSetup, SimOptions};
/// use fpb_trace::catalog;
/// use fpb_types::SystemConfig;
///
/// let cfg = SystemConfig::default();
/// let wl = catalog::workload("xal_m").unwrap();
/// let opts = SimOptions::with_instructions(30_000);
/// let m = try_run_workload(&wl, &cfg, &SchemeSetup::fpb(&cfg), &opts).unwrap();
/// assert_eq!(m.instructions_per_core, 30_000);
/// ```
pub fn try_run_workload<S: Scheme + Clone>(
    workload: &Workload,
    cfg: &SystemConfig,
    setup: &S,
    opts: &SimOptions,
) -> Result<Metrics, SimError> {
    cfg.validate()?;
    System::new(workload, cfg, setup, opts).try_run()
}

/// Builds and warms the per-core front ends for a workload. Warm-up cost
/// dominates short runs, and warmed cores depend only on the workload and
/// system config — sweeping many schemes over one workload should warm
/// once and pass clones to [`run_workload_warmed`].
///
/// # Panics
///
/// Panics if the configuration is invalid.
pub fn warm_cores(workload: &Workload, cfg: &SystemConfig, opts: &SimOptions) -> Vec<CoreState> {
    // Construction-time validation with a documented `# Panics` contract;
    // panic_reachability confirms this is unreachable from run/step.
    // fpb-lint: allow(panic_freedom)
    cfg.validate().expect("invalid system config");
    assert!(
        workload.per_core.len() >= cfg.cores as usize,
        "workload has {} profiles for {} cores",
        workload.per_core.len(),
        cfg.cores
    );
    let mut root = SimRng::seed_from(cfg.seed);
    let warmup = opts.warmup_accesses.unwrap_or(60_000);
    (0..cfg.cores)
        .map(|i| {
            let mut core = CoreState::with_mode(
                workload.per_core[i as usize].clone(),
                CoreId::new(i),
                &cfg.cache,
                &mut root,
                opts.full_hierarchy,
            )
            // Construction-time validation (see `# Panics` above);
            // unreachable from run/step per panic_reachability.
            // fpb-lint: allow(panic_freedom)
            .expect("invalid cache config");
            let mut wrng = root.fork(0xF111 + i as u64);
            core.warm_up(warmup, &mut wrng);
            core
        })
        .collect()
}

/// Like [`run_workload`] but reusing pre-warmed cores (see
/// [`warm_cores`]). The cores are cloned, so the same warmed set can be
/// replayed under many schemes with identical initial cache state.
pub fn run_workload_warmed<S: Scheme + Clone>(
    workload: &Workload,
    cfg: &SystemConfig,
    setup: &S,
    opts: &SimOptions,
    cores: &[CoreState],
) -> Metrics {
    System::with_cores(workload, cfg, setup, opts, cores.to_vec()).run()
}

/// A worker-owned bundle of the write path's recycled storage: the
/// [`WriteBufferPool`] (which owns the pooled `ChangeSet`s and round
/// vectors), the [`RoundSplitter`] grouping scratch, and the power
/// ledger's [`fpb_core::GrantScratch`] planning buffers.
///
/// A fresh `System` cold-starts all three — fine for one run, wasteful
/// for a sweep, where every grid point re-pays the pool's priming
/// allocations. A sweep worker instead holds one `SimArena` per worker
/// slot and threads it through [`run_workload_warmed_arena`], so the
/// buffers are allocated once per worker and recycled across points.
///
/// Reuse is results-neutral by construction: every buffer in the bundle
/// is cleared or fully overwritten before use and none of them touches
/// an RNG, so a run fed a used arena is bit-for-bit identical to a run
/// with a fresh one (enforced by the pooled-vs-fresh equivalence tests
/// and the sweep's jobs-invariance gate).
#[derive(Debug, Default)]
pub struct SimArena {
    pool: WriteBufferPool,
    splitter: RoundSplitter,
    grants: fpb_core::GrantScratch,
}

/// Like [`run_workload_warmed`] but recycling `arena`'s buffers through
/// the run: the arena is moved into the system, the simulation runs to
/// completion, and the (now warmed) arena is moved back out before the
/// metrics are finalized. See [`SimArena`] for why this cannot change
/// results.
///
/// # Panics
///
/// Panics if the configuration is invalid or on an internal scheduling
/// deadlock, exactly as [`run_workload_warmed`] does.
pub fn run_workload_warmed_arena<S: Scheme + Clone>(
    workload: &Workload,
    cfg: &SystemConfig,
    setup: &S,
    opts: &SimOptions,
    cores: &[CoreState],
    arena: &mut SimArena,
) -> Metrics {
    let mut sys = System::with_cores(workload, cfg, setup, opts, cores.to_vec());
    sys.adopt_arena(std::mem::take(arena));
    while sys.step() {}
    *arena = sys.reclaim_arena();
    sys.finish()
}

/// Like [`try_run_workload`] but recording the run's lifecycle event
/// stream into `sink`, returned alongside the metrics. The sink observes
/// the engine without perturbing it, so the metrics are bit-for-bit what
/// [`try_run_workload`] would report.
///
/// # Errors
///
/// Returns [`SimError`] for an invalid configuration or a scheduling
/// deadlock, exactly as [`try_run_workload`] does.
pub fn run_workload_recorded<S: Scheme + Clone, E: EventSink>(
    workload: &Workload,
    cfg: &SystemConfig,
    setup: &S,
    opts: &SimOptions,
    sink: E,
) -> Result<(Metrics, E), SimError> {
    cfg.validate()?;
    let mut sys = System::new_with_sink(workload, cfg, setup, opts, sink);
    while sys.try_step()? {}
    Ok(sys.finish_with_sink())
}

impl<S: Scheme + Clone> System<S> {
    /// Builds the system in its initial state.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation or the workload does not provide a
    /// profile for every core.
    pub fn new(
        workload: &Workload,
        cfg: &SystemConfig,
        setup: &S,
        opts: &SimOptions,
    ) -> Self {
        let cores = warm_cores(workload, cfg, opts);
        Self::with_cores(workload, cfg, setup, opts, cores)
    }

    /// Builds the system around pre-warmed cores (see [`warm_cores`]).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    pub fn with_cores(
        workload: &Workload,
        cfg: &SystemConfig,
        setup: &S,
        opts: &SimOptions,
        cores: Vec<CoreState>,
    ) -> Self {
        System::with_cores_and_sink(workload, cfg, setup, opts, cores, NullSink)
    }
}

impl<S: Scheme + Clone, E: EventSink> System<S, E> {
    /// Like [`System::new`] but recording lifecycle events into `sink`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation or the workload does not provide a
    /// profile for every core.
    pub fn new_with_sink(
        workload: &Workload,
        cfg: &SystemConfig,
        setup: &S,
        opts: &SimOptions,
        sink: E,
    ) -> Self {
        let cores = warm_cores(workload, cfg, opts);
        Self::with_cores_and_sink(workload, cfg, setup, opts, cores, sink)
    }

    /// Builds the system around pre-warmed cores and a lifecycle-event
    /// sink. The sink cannot change simulated results — emission sites
    /// only observe engine state, never mutate it (enforced by the
    /// derive-vs-inline equivalence gate).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    pub fn with_cores_and_sink(
        workload: &Workload,
        cfg: &SystemConfig,
        setup: &S,
        opts: &SimOptions,
        cores: Vec<CoreState>,
        sink: E,
    ) -> Self {
        // Construction-time validation with a documented `# Panics`
        // contract; unreachable from run/step per panic_reachability.
        // fpb-lint: allow(panic_freedom)
        cfg.validate().expect("invalid system config");
        let _ = workload;
        let geom = DimmGeometry::new(cfg.pcm.chips, cfg.pcm.cells_per_line());
        let mut power = PowerManager::new(setup.policy().clone(), &geom);
        if opts.audit_ledger {
            power.enable_audit();
        }
        // The fault stream forks off its own fresh root so enabling or
        // disabling injection can never perturb the data/write streams.
        let faults = if cfg.faults.any_injection_enabled() {
            Some(FaultInjector::new(
                cfg.faults.clone(),
                SimRng::seed_from(cfg.seed).fork(0xFA017),
            ))
        } else {
            None
        };
        let (cap_total, cap_chip) = power::round_caps(setup.policy());
        let banks = (0..cfg.pcm.banks)
            .map(|_| Bank {
                state: BankState::Idle,
                parked: None,
            })
            .collect();
        // Coarse wear tracking: 64 regions, PCM-typical 10^7 endurance.
        let endurance = EnduranceTracker::new(
            cfg.pcm.total_lines(),
            64,
            cfg.pcm.chips,
            10_000_000,
        )
        .with_cells_per_chip(cfg.pcm.cells_per_chip_per_line() as u64);
        let mut sys = System {
            cores,
            banks,
            rdq: VecDeque::new(),
            pending_reads: VecDeque::new(),
            wrq: VecDeque::new(),
            overflow: VecDeque::new(),
            power,
            geom,
            sampler: IterationSampler::new(setup.iteration_model(&cfg.pcm.write_model)),
            wear: setup
                .wear_period()
                .map(|p| IntraLineWearLeveler::new(p, cfg.pcm.cells_per_line())),
            data_rng: SimRng::seed_from(cfg.seed).fork(0xDA7A),
            write_rng: SimRng::seed_from(cfg.seed).fork(0x9C3),
            now: Cycles::ZERO,
            burst: false,
            bus_free_at: Cycles::ZERO,
            next_write_id: 0,
            target_instr: opts.instructions_per_core,
            cap_total,
            cap_chip,
            endurance,
            recent_writes: VecDeque::new(),
            scrub_period: opts.scrub_period_cycles,
            next_scrub_at: Cycles::new(opts.scrub_period_cycles.unwrap_or(u64::MAX)),
            faults,
            splitter: RoundSplitter::new(),
            pool: WriteBufferPool::new(),
            events: BinaryHeap::new(),
            due_scratch: Vec::new(),
            deferred_scratch: Vec::new(),
            reference_stepper: opts.reference_stepper,
            reference_alloc: opts.reference_alloc,
            reference_sampler: opts.reference_sampler,
            brownout_since: None,
            degraded: false,
            metrics: Metrics {
                instructions_per_core: opts.instructions_per_core,
                cores: cfg.cores,
                ..Metrics::default()
            },
            cfg: cfg.clone(),
            setup: setup.clone(),
            sink,
        };
        for ci in 0..sys.cores.len() {
            sys.push_core_event(ci);
        }
        if E::ENABLED {
            let ev = LifecycleEvent::RunStart {
                cores: sys.cfg.cores,
                instructions_per_core: opts.instructions_per_core,
                chips: sys.cfg.pcm.chips,
                banks: sys.cfg.pcm.banks,
                total_lines: sys.cfg.pcm.total_lines(),
                cells_per_chip_per_line: sys.cfg.pcm.cells_per_chip_per_line() as u64,
                seed: sys.cfg.seed,
            };
            sys.sink.emit(ev);
        }
        sys
    }
}

impl<S: Scheme, E: EventSink> System<S, E> {
    /// Runs to completion and returns the metrics.
    ///
    /// # Panics
    ///
    /// Panics on an internal scheduling deadlock (a bug, not a workload
    /// property — round splitting guarantees forward progress). Use
    /// [`System::try_run`] to get the failure as a value instead.
    pub fn run(self) -> Metrics {
        match self.try_run() {
            Ok(m) => m,
            // Documented contract of this wrapper: re-raise the typed
            // failure from `try_run` for callers that treat a deadlock
            // as a bug (same shape as exec::parallel_map_indexed).
            // fpb-lint: allow(panic_freedom, panic_reachability)
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs to completion, returning engine failures as [`SimError`].
    pub fn try_run(mut self) -> Result<Metrics, SimError> {
        while self.try_step()? {}
        Ok(self.finish())
    }

    /// Advances the simulation by one event round: process everything due
    /// now, run a scheduling pass, and jump to the next event. Returns
    /// `false` once every core has retired its budget. Useful for
    /// white-box inspection between events; [`System::run`] is the
    /// batteries-included driver.
    ///
    /// # Panics
    ///
    /// Panics on an internal scheduling deadlock (a bug, not a workload
    /// property — round splitting guarantees forward progress). Use
    /// [`System::try_step`] to get the failure as a value instead.
    pub fn step(&mut self) -> bool {
        match self.try_step() {
            Ok(more) => more,
            // Documented contract of this wrapper: re-raise the typed
            // failure from `try_step` for callers that treat a deadlock
            // as a bug (same shape as exec::parallel_map_indexed).
            // fpb-lint: allow(panic_freedom, panic_reachability)
            Err(e) => panic!("{e}"),
        }
    }

    /// Like [`System::step`], returning a scheduling deadlock as
    /// [`SimError::Deadlock`] instead of panicking.
    pub fn try_step(&mut self) -> Result<bool, SimError> {
        if E::ENABLED {
            // One snapshot per step, before any processing — 1:1 with
            // the samples `Timeline::record` takes, so replay rebuilds
            // the timeline exactly.
            let ev = LifecycleEvent::StepSnapshot {
                at: self.now.get(),
                bank_mask: self.bank_write_mask(),
                burst: self.burst,
                wrq: self.wrq.len() as u64,
                rdq: self.rdq.len() as u64,
            };
            self.sink.emit(ev);
        }
        self.update_brownout();
        if self.reference_stepper {
            self.process_bank_events();
            self.process_core_arrivals();
        } else {
            self.process_due_events();
        }
        self.schedule();
        if self.cores.iter().all(|c| c.done) {
            return Ok(false);
        }
        let next = if self.reference_stepper {
            self.next_event_time()
        } else {
            self.next_event_time_heap()
        };
        let next = next.ok_or(SimError::Deadlock {
            cycle: self.now.get(),
            pending_writes: self.wrq.len() + self.overflow.len(),
            pending_reads: self.rdq.len() + self.pending_reads.len(),
        })?;
        debug_assert!(next > self.now, "time must advance");
        self.account(next);
        self.now = next;
        Ok(true)
    }

    /// Finalizes and returns the metrics (call after [`System::step`]
    /// returns `false`).
    pub fn finish(self) -> Metrics {
        self.finish_with_sink().0
    }

    /// Like [`System::finish`], also yielding the sink back so a
    /// recording caller can retrieve the captured event stream.
    pub fn finish_with_sink(mut self) -> (Metrics, E) {
        if E::ENABLED {
            for ci in 0..self.cores.len() {
                let ev = LifecycleEvent::CoreDone {
                    core: ci as u64,
                    at: self.cores[ci].done_at.get(),
                };
                self.sink.emit(ev);
            }
        }
        self.metrics.cycles = self
            .cores
            .iter()
            .map(|c| c.done_at)
            .max()
            .unwrap_or(self.now)
            .get();
        self.metrics.power = self.power.stats().clone();
        if let Some(inj) = self.faults.as_ref() {
            self.metrics.faults.verify_failures = inj.verify_failures();
            self.metrics.faults.stuck_lines_marked = inj.stuck_marked();
        }
        self.metrics.faults.audit_violations = self.power.audit_violations();
        self.metrics.endurance = Some(self.endurance);
        if E::ENABLED {
            let ev = LifecycleEvent::RunEnd {
                at: self.metrics.cycles,
            };
            self.sink.emit(ev);
        }
        (self.metrics, self.sink)
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Entries currently queued in the write queue (excluding overflow).
    pub fn write_queue_len(&self) -> usize {
        self.wrq.len()
    }

    /// Entries currently queued in the read queue (excluding blocked
    /// arrivals).
    pub fn read_queue_len(&self) -> usize {
        self.rdq.len()
    }

    /// True while the controller is in write-burst mode.
    pub fn in_burst(&self) -> bool {
        self.burst
    }

    /// Snapshot of which banks currently hold a write in any form.
    pub fn banks_with_writes(&self) -> Vec<bool> {
        self.banks
            .iter()
            .map(|b| b.state.has_write() || b.parked.is_some())
            .collect()
    }

    /// Pool telemetry: `(reuses, fresh_allocations)` of the write-buffer
    /// pool, for benches and tests asserting the steady-state write path
    /// stops allocating.
    pub fn pool_stats(&self) -> (u64, u64) {
        (self.pool.reuses(), self.pool.fresh_allocations())
    }

    /// Installs a donated [`SimArena`], replacing this system's fresh
    /// write-buffer pool, round splitter, and grant scratch with the
    /// arena's recycled ones. Call before stepping; reuse never changes
    /// simulated results (see [`SimArena`]).
    pub fn adopt_arena(&mut self, arena: SimArena) {
        self.pool = arena.pool;
        self.splitter = arena.splitter;
        self.power.donate_grant_scratch(arena.grants);
    }

    /// Moves the recycled storage back out of a finished system so the
    /// next run on this worker can adopt it. The system keeps empty
    /// replacements; call once stepping is done, before
    /// [`System::finish`].
    pub fn reclaim_arena(&mut self) -> SimArena {
        SimArena {
            pool: std::mem::take(&mut self.pool),
            splitter: std::mem::take(&mut self.splitter),
            grants: self.power.take_grant_scratch(),
        }
    }
}
