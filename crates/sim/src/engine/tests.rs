//! End-to-end engine tests over the trace catalog: determinism, the
//! paper's headline scheme orderings, and optional-feature behavior.

#![allow(clippy::unwrap_used)]

use fpb_pcm::CellMapping;
use fpb_trace::catalog;
use fpb_types::SystemConfig;

use crate::scheme::SchemeSetup;

use super::{run_workload, SimOptions, System};

fn small_opts() -> SimOptions {
    SimOptions::with_instructions(60_000)
}

fn cfg() -> SystemConfig {
    SystemConfig::default()
}

#[test]
fn ideal_run_completes_with_traffic() {
    let cfg = cfg();
    let wl = catalog::workload("mcf_m").unwrap();
    let m = run_workload(&wl, &cfg, &SchemeSetup::ideal(&cfg), &small_opts());
    assert!(m.cycles > 60_000, "cycles = {}", m.cycles);
    assert!(m.pcm_reads > 0, "no PCM reads");
    assert!(m.pcm_writes > 0, "no PCM writes");
    assert!(m.cpi() >= 1.0, "CPI = {}", m.cpi());
}

#[test]
fn deterministic_across_runs() {
    let cfg = cfg();
    let wl = catalog::workload("lbm_m").unwrap();
    let a = run_workload(&wl, &cfg, &SchemeSetup::fpb(&cfg), &small_opts());
    let b = run_workload(&wl, &cfg, &SchemeSetup::fpb(&cfg), &small_opts());
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.pcm_writes, b.pcm_writes);
    assert_eq!(a.burst_cycles, b.burst_cycles);
}

#[test]
fn power_limits_cost_performance() {
    // The headline ordering of Fig. 4: Ideal >= DIMM-only >= DIMM+chip.
    let cfg = cfg();
    let wl = catalog::workload("mcf_m").unwrap();
    let ideal = run_workload(&wl, &cfg, &SchemeSetup::ideal(&cfg), &small_opts());
    let dimm = run_workload(&wl, &cfg, &SchemeSetup::dimm_only(&cfg), &small_opts());
    let chip = run_workload(&wl, &cfg, &SchemeSetup::dimm_chip(&cfg), &small_opts());
    assert!(
        ideal.cycles <= dimm.cycles,
        "ideal {} vs dimm {}",
        ideal.cycles,
        dimm.cycles
    );
    assert!(
        dimm.cycles <= chip.cycles,
        "dimm {} vs chip {}",
        dimm.cycles,
        chip.cycles
    );
    // And the restriction must actually hurt on a write-heavy load.
    assert!(
        chip.cycles > ideal.cycles,
        "chip budget should cost cycles"
    );
}

#[test]
fn fpb_recovers_performance() {
    let cfg = cfg();
    let wl = catalog::workload("mcf_m").unwrap();
    let chip = run_workload(&wl, &cfg, &SchemeSetup::dimm_chip(&cfg), &small_opts());
    let fpb = run_workload(&wl, &cfg, &SchemeSetup::fpb(&cfg), &small_opts());
    let ideal = run_workload(&wl, &cfg, &SchemeSetup::ideal(&cfg), &small_opts());
    assert!(
        fpb.cycles < chip.cycles,
        "FPB {} must beat DIMM+chip {}",
        fpb.cycles,
        chip.cycles
    );
    assert!(
        fpb.cycles >= ideal.cycles,
        "FPB cannot beat Ideal"
    );
}

#[test]
fn gcp_uses_tokens_under_naive_mapping() {
    let cfg = cfg();
    let wl = catalog::workload("ast_m").unwrap();
    let m = run_workload(
        &wl,
        &cfg,
        &SchemeSetup::gcp(&cfg, CellMapping::Naive, 0.7),
        &small_opts(),
    );
    assert!(
        m.power.gcp_grants() > 0,
        "integer data under NE must pressure some chip"
    );
}

#[test]
fn bim_reduces_gcp_pressure_vs_naive() {
    let cfg = cfg();
    let wl = catalog::workload("ast_m").unwrap();
    let ne = run_workload(
        &wl,
        &cfg,
        &SchemeSetup::gcp(&cfg, CellMapping::Naive, 0.7),
        &small_opts(),
    );
    let bim = run_workload(
        &wl,
        &cfg,
        &SchemeSetup::gcp(&cfg, CellMapping::Bim, 0.7),
        &small_opts(),
    );
    assert!(
        bim.power.gcp_usable_total() < ne.power.gcp_usable_total(),
        "BIM {} vs NE {}",
        bim.power.gcp_usable_total(),
        ne.power.gcp_usable_total()
    );
}

#[test]
fn write_burst_time_is_substantial_on_write_heavy_load() {
    let cfg = cfg();
    let wl = catalog::workload("mum_m").unwrap();
    let m = run_workload(&wl, &cfg, &SchemeSetup::dimm_chip(&cfg), &small_opts());
    assert!(
        m.burst_fraction() > 0.05,
        "burst fraction = {}",
        m.burst_fraction()
    );
}

#[test]
fn truncation_reduces_cycles() {
    let cfg = cfg();
    let wl = catalog::workload("lbm_m").unwrap();
    let plain = run_workload(&wl, &cfg, &SchemeSetup::fpb(&cfg), &small_opts());
    let wt = run_workload(&wl, &cfg, &SchemeSetup::fpb(&cfg).with_wt(8), &small_opts());
    assert!(wt.truncations > 0, "no truncations recorded");
    // At bench scale WT is a clear win; at this test scale allow a
    // small scheduling-noise band while still catching regressions
    // where truncation would somehow slow writes down broadly.
    assert!(
        (wt.cycles as f64) <= plain.cycles as f64 * 1.05,
        "WT {} vs plain {}",
        wt.cycles,
        plain.cycles
    );
}

#[test]
fn write_pausing_pauses_and_improves_read_latency() {
    let cfg = cfg();
    let wl = catalog::workload("mcf_m").unwrap();
    let plain = run_workload(&wl, &cfg, &SchemeSetup::fpb(&cfg), &small_opts());
    let wp = run_workload(
        &wl,
        &cfg,
        &SchemeSetup::fpb(&cfg).with_wc().with_wp(),
        &small_opts(),
    );
    assert!(wp.pauses > 0, "WP must actually pause writes");
    assert!(
        wp.avg_read_latency() < plain.avg_read_latency() * 1.3,
        "WP {} vs plain {}",
        wp.avg_read_latency(),
        plain.avg_read_latency()
    );
}

#[test]
fn write_cancellation_cancels_young_writes() {
    let cfg = cfg();
    let wl = catalog::workload("tig_m").unwrap(); // read-heavy: many conflicts
    let wc = run_workload(&wl, &cfg, &SchemeSetup::fpb(&cfg).with_wc(), &small_opts());
    assert!(wc.cancellations > 0, "WC must trigger on a read-heavy load");
}

#[test]
fn preset_writes_are_single_iteration() {
    let cfg = cfg();
    let wl = catalog::workload("lbm_m").unwrap();
    let plain = run_workload(&wl, &cfg, &SchemeSetup::fpb(&cfg), &small_opts());
    let preset = run_workload(&wl, &cfg, &SchemeSetup::fpb(&cfg).with_preset(), &small_opts());
    // Single-RESET writes slash write-active time per write.
    let plain_cost = plain.write_active_cycles as f64 / plain.pcm_writes.max(1) as f64;
    let preset_cost = preset.write_active_cycles as f64 / preset.pcm_writes.max(1) as f64;
    assert!(
        preset_cost < plain_cost / 2.0,
        "preset {preset_cost} vs plain {plain_cost}"
    );
}

#[test]
fn gcp_regulation_reduces_waste() {
    let cfg = cfg().with_gcp_efficiency(0.4);
    let wl = catalog::workload("ast_m").unwrap();
    let plain = run_workload(
        &wl,
        &cfg,
        &SchemeSetup::gcp(&cfg, CellMapping::Naive, 0.4),
        &small_opts(),
    );
    let reg = run_workload(
        &wl,
        &cfg,
        &SchemeSetup::gcp(&cfg, CellMapping::Naive, 0.4)
            .with_gcp_regulation()
            .unwrap(),
        &small_opts(),
    );
    if plain.power.gcp_grants() > 0 && reg.power.gcp_grants() > 0 {
        let plain_rate = plain.power.gcp_waste_total().as_f64()
            / plain.power.gcp_usable_total().as_f64().max(1e-9);
        let reg_rate = reg.power.gcp_waste_total().as_f64()
            / reg.power.gcp_usable_total().as_f64().max(1e-9);
        assert!(
            reg_rate <= plain_rate + 1e-9,
            "regulation must not waste more: {reg_rate} vs {plain_rate}"
        );
    }
}

#[test]
fn tight_budget_forces_multi_round_writes() {
    let mut cfg = cfg();
    cfg.power.pt_dimm = 96; // far below typical change counts
    let wl = catalog::workload("lbm_m").unwrap();
    let m = run_workload(&wl, &cfg, &SchemeSetup::dimm_chip(&cfg), &small_opts());
    assert!(
        m.write_rounds > m.pcm_writes,
        "rounds {} must exceed writes {}",
        m.write_rounds,
        m.pcm_writes
    );
}

#[test]
fn per_chip_cells_accumulate_consistently() {
    let cfg = cfg();
    let wl = catalog::workload("cop_m").unwrap();
    let m = run_workload(&wl, &cfg, &SchemeSetup::fpb(&cfg), &small_opts());
    assert_eq!(m.per_chip_cells.len(), 8);
    assert_eq!(m.per_chip_cells.iter().sum::<u64>(), m.cells_written);
    // BIM keeps wear nearly even on streaming data.
    assert!(m.chip_imbalance() < 1.3, "imbalance {}", m.chip_imbalance());
}

#[test]
fn full_hierarchy_mode_runs_and_filters() {
    let cfg = cfg();
    let wl = catalog::workload("lbm_m").unwrap();
    let mut opts = small_opts();
    opts.full_hierarchy = true;
    let full = run_workload(&wl, &cfg, &SchemeSetup::fpb(&cfg), &opts);
    let llc_only = run_workload(&wl, &cfg, &SchemeSetup::fpb(&cfg), &small_opts());
    assert!(full.pcm_reads > 0 && full.pcm_writes > 0);
    // The two front ends agree on traffic scale. Full mode adds
    // write-allocate fill reads for store misses (the L1/L2 fetch on
    // write) and removes short-term-reuse reads, so counts differ but
    // stay in the same regime.
    let ratio = full.pcm_reads as f64 / llc_only.pcm_reads as f64;
    assert!(
        (0.5..2.5).contains(&ratio),
        "full {} vs llc {}",
        full.pcm_reads,
        llc_only.pcm_reads
    );
    // Deterministic too.
    let again = run_workload(&wl, &cfg, &SchemeSetup::fpb(&cfg), &opts);
    assert_eq!(full.cycles, again.cycles);
}

#[test]
fn scrubbing_generates_background_reads() {
    let cfg = cfg();
    let wl = catalog::workload("lbm_m").unwrap();
    let mut opts = small_opts();
    opts.scrub_period_cycles = Some(20_000);
    let m = run_workload(&wl, &cfg, &SchemeSetup::fpb(&cfg), &opts);
    assert!(m.scrub_reads > 0, "scrubs must fire on a write-heavy run");
    // Scrub reads never count as demand reads.
    let plain = run_workload(&wl, &cfg, &SchemeSetup::fpb(&cfg), &small_opts());
    assert_eq!(plain.scrub_reads, 0);
    let ratio = m.pcm_reads as f64 / plain.pcm_reads as f64;
    assert!((0.9..1.1).contains(&ratio), "demand reads unchanged: {ratio}");
}

#[test]
fn aggressive_scrubbing_adds_background_load() {
    // Aggressive scrubbing must generate far more background reads
    // than a mild period, while keeping the end-to-end run in the
    // same regime: scrub reads perturb write-burst onset, so the
    // exact cycle ordering vs an unscrubbed run is
    // trajectory-dependent in both directions.
    let cfg = cfg();
    let wl = catalog::workload("mum_m").unwrap();
    let mut opts = small_opts();
    opts.scrub_period_cycles = Some(2_000); // absurdly aggressive
    let scrub = run_workload(&wl, &cfg, &SchemeSetup::fpb(&cfg), &opts);
    let mut mild_opts = small_opts();
    mild_opts.scrub_period_cycles = Some(40_000);
    let mild = run_workload(&wl, &cfg, &SchemeSetup::fpb(&cfg), &mild_opts);
    assert!(
        scrub.scrub_reads > 3 * mild.scrub_reads,
        "aggressive {} vs mild {}",
        scrub.scrub_reads,
        mild.scrub_reads
    );
    let plain = run_workload(&wl, &cfg, &SchemeSetup::fpb(&cfg), &small_opts());
    let ratio = scrub.cycles as f64 / plain.cycles as f64;
    assert!(
        (0.8..1.6).contains(&ratio),
        "scrub {} vs plain {}",
        scrub.cycles,
        plain.cycles
    );
}

#[test]
fn stepping_matches_run() {
    let cfg = cfg();
    let wl = catalog::workload("bwa_m").unwrap();
    let opts = small_opts();
    let batch = run_workload(&wl, &cfg, &SchemeSetup::fpb(&cfg), &opts);
    let mut sys = System::new(&wl, &cfg, &SchemeSetup::fpb(&cfg), &opts);
    let mut steps = 0u64;
    while sys.step() {
        steps += 1;
        assert!(sys.read_queue_len() <= cfg.queues.read_entries);
        assert!(sys.banks_with_writes().len() == 8);
    }
    assert!(steps > 100, "a real run takes many event rounds");
    let stepped = sys.finish();
    assert_eq!(stepped.cycles, batch.cycles);
    assert_eq!(stepped.pcm_writes, batch.pcm_writes);
}

#[test]
fn low_traffic_workload_runs_fast() {
    let cfg = cfg();
    let wl = catalog::workload("xal_m").unwrap();
    let m = run_workload(&wl, &cfg, &SchemeSetup::dimm_chip(&cfg), &small_opts());
    // xal has almost no PCM traffic; CPI must stay near 1.
    assert!(m.cpi() < 5.0, "CPI = {}", m.cpi());
}
