//! Power arbitration: round-splitting caps derived from the scheme's
//! power policy, brownout window bookkeeping, and per-step activity
//! accounting. Token admission itself lives in
//! [`fpb_core::PowerManager`]; this stage owns everything around it.

use fpb_core::PowerPolicyConfig;
use fpb_types::Cycles;

use crate::bank::BankState;
use crate::inspect::{EventSink, LifecycleEvent, PowerOp};
use crate::scheme::Scheme;

use super::System;

/// Round-splitting caps for a power policy: a single round must be
/// admissible against an empty ledger. With chip budgets, the DIMM's raw
/// budget only yields `pt_dimm * e_lcp` usable tokens through the local
/// pumps. Returns `(cap_total, cap_chip)`.
pub(super) fn round_caps(policy: &PowerPolicyConfig) -> (Option<u64>, Option<u64>) {
    let cap_total = policy.pt_dimm.map(|pt| {
        if policy.enforce_chip_budget {
            ((pt as f64) * policy.e_lcp).floor().max(1.0) as u64
        } else {
            pt
        }
    });
    let cap_chip = if policy.enforce_chip_budget {
        Some((policy.chip_budget_millis() / 1000).max(1))
    } else {
        None
    };
    (cap_total, cap_chip)
}

impl<S: Scheme, E: EventSink> System<S, E> {
    /// Applies brownout window transitions due at the current time:
    /// withholds budget tokens at a window start, restores them at the
    /// end, and enters/leaves degraded mode when a window persists past
    /// `faults.degraded_after_cycles`.
    pub(super) fn update_brownout(&mut self) {
        let Some(inj) = self.faults.as_ref() else {
            return;
        };
        let active = inj.brownout_active(self.now);
        if active && !self.power.in_brownout() {
            self.power.begin_brownout(self.cfg.faults.brownout_budget_scale);
            self.metrics.faults.brownout_windows += 1;
            self.brownout_since = Some(self.now);
            if E::ENABLED {
                let at = self.now.get();
                self.emit(LifecycleEvent::BrownoutStart { at });
            }
            // begin_brownout audits the ledger, so the stats snapshot
            // must be re-recorded (id 0 = no associated write).
            self.emit_power(0, PowerOp::BrownoutBegin, true);
        } else if !active && self.power.in_brownout() {
            self.power.end_brownout();
            self.brownout_since = None;
            self.degraded = false;
            if E::ENABLED {
                let at = self.now.get();
                self.emit(LifecycleEvent::BrownoutEnd { at });
            }
            self.emit_power(0, PowerOp::BrownoutEnd, true);
        }
        if let Some(since) = self.brownout_since {
            let threshold = self.cfg.faults.degraded_after_cycles;
            if threshold > 0 && self.now.saturating_sub(since).get() >= threshold {
                self.degraded = true;
            }
        }
    }

    /// Charges the interval `[now, until)` to the activity counters.
    pub(super) fn account(&mut self, until: Cycles) {
        let delta = until.saturating_sub(self.now).get();
        if self.burst {
            self.metrics.burst_cycles += delta;
        }
        let writing = self
            .banks
            .iter()
            .any(|b| matches!(b.state, BankState::Writing { .. }));
        if writing {
            self.metrics.write_active_cycles += delta;
        }
        if self.power.in_brownout() {
            self.metrics.faults.brownout_cycles += delta;
        }
        if self.degraded {
            self.metrics.faults.degraded_cycles += delta;
        }
        if E::ENABLED && delta > 0 {
            let ev = LifecycleEvent::TimeAdvance {
                from: self.now.get(),
                to: until.get(),
                burst: self.burst,
                writing,
                brownout: self.power.in_brownout(),
                degraded: self.degraded,
            };
            self.emit(ev);
        }
    }
}
