//! Result reporting: CSV export and summary formatting.
//!
//! Experiment scripts and notebooks want machine-readable output; this
//! module renders [`Metrics`] rows as CSV (no serialization dependency —
//! the format is a fixed, documented column set).

use std::io::{self, Write};

use crate::metrics::Metrics;

/// The CSV column set, in order.
pub const CSV_COLUMNS: [&str; 14] = [
    "label",
    "cycles",
    "instructions_per_core",
    "cpi",
    "pcm_reads",
    "pcm_writes",
    "write_rounds",
    "cells_written",
    "burst_fraction",
    "write_throughput",
    "avg_read_latency",
    "gcp_peak_tokens",
    "gcp_usable_total",
    "chip_imbalance",
];

/// Writes the CSV header row.
///
/// # Errors
///
/// Propagates the writer's I/O errors.
pub fn write_csv_header<W: Write>(mut w: W) -> io::Result<()> {
    writeln!(w, "{}", CSV_COLUMNS.join(","))
}

/// Writes one labeled metrics row.
///
/// # Errors
///
/// Propagates the writer's I/O errors.
///
/// # Panics
///
/// Panics if `label` contains a comma (labels become a CSV field).
///
/// # Examples
///
/// ```
/// use fpb_sim::report::{write_csv_header, write_csv_row};
/// use fpb_sim::Metrics;
///
/// let m = Metrics {
///     cycles: 1000,
///     instructions_per_core: 500,
///     pcm_reads: 3,
///     ..Metrics::default()
/// };
/// let mut out = Vec::new();
/// write_csv_header(&mut out).unwrap();
/// write_csv_row(&mut out, "FPB", &m).unwrap();
/// let text = String::from_utf8(out).unwrap();
/// assert!(text.lines().nth(1).unwrap().starts_with("FPB,1000,500,2"));
/// ```
pub fn write_csv_row<W: Write>(mut w: W, label: &str, m: &Metrics) -> io::Result<()> {
    assert!(!label.contains(','), "label must not contain commas");
    writeln!(
        w,
        "{},{},{},{:.6},{},{},{},{},{:.6},{:.6},{:.3},{},{:.3},{:.4}",
        label,
        m.cycles,
        m.instructions_per_core,
        m.cpi(),
        m.pcm_reads,
        m.pcm_writes,
        m.write_rounds,
        m.cells_written,
        m.burst_fraction(),
        m.write_throughput(),
        m.avg_read_latency(),
        m.power.peak_gcp_tokens(),
        m.power.gcp_usable_total().as_f64(),
        m.chip_imbalance(),
    )
}

/// Renders a one-paragraph human summary of a run.
pub fn summary(label: &str, m: &Metrics) -> String {
    format!(
        "{label}: CPI {:.2} over {} instr/core; {} reads (avg latency {:.0} cy), \
         {} line writes ({} rounds, {:.0} cells/write); {:.1}% of time in write \
         bursts; GCP peak {} tokens",
        m.cpi(),
        m.instructions_per_core,
        m.pcm_reads,
        m.avg_read_latency(),
        m.pcm_writes,
        m.write_rounds,
        m.avg_cell_changes(),
        m.burst_fraction() * 100.0,
        m.power.peak_gcp_tokens(),
    )
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn metrics() -> Metrics {
        Metrics {
            cycles: 2_000,
            instructions_per_core: 1_000,
            pcm_reads: 10,
            pcm_writes: 5,
            write_rounds: 6,
            cells_written: 1_000,
            burst_cycles: 500,
            write_active_cycles: 900,
            read_latency_sum: 11_000,
            ..Metrics::default()
        }
    }

    #[test]
    fn header_matches_columns() {
        let mut out = Vec::new();
        write_csv_header(&mut out).unwrap();
        let line = String::from_utf8(out).unwrap();
        assert_eq!(line.trim().split(',').count(), CSV_COLUMNS.len());
        assert!(line.starts_with("label,cycles"));
    }

    #[test]
    fn row_has_all_fields_and_parses_back() {
        let mut out = Vec::new();
        write_csv_row(&mut out, "test", &metrics()).unwrap();
        let line = String::from_utf8(out).unwrap();
        let fields: Vec<&str> = line.trim().split(',').collect();
        assert_eq!(fields.len(), CSV_COLUMNS.len());
        assert_eq!(fields[0], "test");
        assert_eq!(fields[1], "2000");
        let cpi: f64 = fields[3].parse().unwrap();
        assert!((cpi - 2.0).abs() < 1e-9);
        let burst: f64 = fields[8].parse().unwrap();
        assert!((burst - 0.25).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "commas")]
    fn comma_label_panics() {
        let mut out = Vec::new();
        let _ = write_csv_row(&mut out, "a,b", &metrics());
    }

    #[test]
    fn summary_mentions_key_numbers() {
        let s = summary("FPB", &metrics());
        assert!(s.contains("FPB"));
        assert!(s.contains("CPI 2.00"));
        assert!(s.contains("5 line writes"));
        assert!(s.contains("25.0%"));
    }
}
