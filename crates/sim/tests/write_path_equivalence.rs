//! Differential proof for the zero-allocation write path: the event-heap
//! stepper and the pooled write buffers must be *bit-for-bit* identical
//! to the reference scan stepper and fresh-allocation path — same final
//! metrics in every field, across seeds, schemes, and fault injection.
//!
//! (The word-level change sampler is deliberately NOT covered here: it
//! consumes the RNG differently by design, so its equivalence to the
//! per-bit reference is distributional and proven in
//! `fpb_trace::data_model` tests.)

use fpb_sim::{run_workload, SchemeSetup, SimOptions};
use fpb_trace::catalog;
use fpb_types::SystemConfig;

const SEEDS: [u64; 3] = [1, 42, 0xF9B];

fn opts() -> SimOptions {
    SimOptions::with_instructions(40_000)
}

fn fault_cfg(seed: u64) -> SystemConfig {
    let mut cfg = SystemConfig {
        seed,
        ..SystemConfig::default()
    };
    cfg.faults.verify_fail_prob = 0.25;
    cfg.faults.stuck_cell_prob = 0.01;
    cfg.faults.stuck_wear_threshold = 64;
    cfg.faults.brownout_period = 10_000;
    cfg.faults.brownout_duration = 2_000;
    cfg
}

/// Runs `setups` on `cfg` with and without the given reference knob and
/// asserts full-metrics equality.
fn assert_identical(
    cfg: &SystemConfig,
    setup: &SchemeSetup,
    tag: &str,
    tweak: impl Fn(&mut SimOptions),
) {
    let wl = catalog::workload("mcf_m").expect("catalog workload");
    let optimized = run_workload(&wl, cfg, setup, &opts());
    let mut ref_opts = opts();
    tweak(&mut ref_opts);
    let reference = run_workload(&wl, cfg, setup, &ref_opts);
    assert_eq!(
        optimized, reference,
        "{tag}: optimized and reference paths diverged (seed {})",
        cfg.seed
    );
}

#[test]
fn heap_stepper_matches_scan_stepper() {
    for seed in SEEDS {
        let cfg = SystemConfig {
            seed,
            ..SystemConfig::default()
        };
        for setup in [
            SchemeSetup::ideal(&cfg),
            SchemeSetup::dimm_chip(&cfg),
            SchemeSetup::fpb(&cfg),
        ] {
            assert_identical(&cfg, &setup, "stepper", |o| o.reference_stepper = true);
        }
    }
}

#[test]
fn pooled_buffers_match_fresh_allocation() {
    for seed in SEEDS {
        let cfg = SystemConfig {
            seed,
            ..SystemConfig::default()
        };
        for setup in [SchemeSetup::dimm_chip(&cfg), SchemeSetup::fpb(&cfg)] {
            assert_identical(&cfg, &setup, "alloc", |o| o.reference_alloc = true);
        }
    }
}

#[test]
fn heap_and_pool_match_reference_under_fault_injection() {
    for seed in SEEDS {
        let cfg = fault_cfg(seed);
        let setup = SchemeSetup::fpb(&cfg);
        assert_identical(&cfg, &setup, "faults/stepper", |o| {
            o.reference_stepper = true;
        });
        assert_identical(&cfg, &setup, "faults/alloc", |o| o.reference_alloc = true);
        assert_identical(&cfg, &setup, "faults/both", |o| {
            o.reference_stepper = true;
            o.reference_alloc = true;
        });
    }
}

#[test]
fn heap_stepper_matches_scan_with_wt_wc_wp_and_scrub() {
    // The richest control-flow surface: truncation, cancellation,
    // pausing, and background scrub reads all interleave with the
    // stepper's event ordering.
    let cfg = SystemConfig {
        seed: 7,
        ..SystemConfig::default()
    };
    let setup = SchemeSetup::fpb(&cfg).with_wt(8).with_wc().with_wp();
    let wl = catalog::workload("mcf_m").expect("catalog workload");
    let mut o = opts();
    o.scrub_period_cycles = Some(20_000);
    let optimized = run_workload(&wl, &cfg, &setup, &o);
    let mut r = o;
    r.reference_stepper = true;
    r.reference_alloc = true;
    let reference = run_workload(&wl, &cfg, &setup, &r);
    assert_eq!(optimized, reference, "wt/wc/wp/scrub divergence");
}
