//! End-to-end guarantees of the supervised sweep: equivalence with the
//! plain sweep, quarantine behavior, retries, and byte-identical
//! journal resume.

use std::path::PathBuf;

use fpb_sim::journal::JournalMode;
use fpb_sim::sweep::{
    run_sweep_jobs, run_sweep_supervised, Axis, PanicInjection, PointState, ReuseOptions,
    SupervisedSweepRequest, SweepError, SweepRun,
};
use fpb_sim::{CancelToken, JobOutcome, SimOptions, SupervisePolicy};
use fpb_trace::catalog;
use fpb_trace::Workload;
use fpb_types::SystemConfig;

const INSTRUCTIONS: u64 = 3_000;

fn axes() -> Vec<Axis> {
    vec![Axis::pt_dimm(&[466, 560]), Axis::e_gcp(&[0.6, 0.9])]
}

fn workload() -> Workload {
    catalog::workload("cop_m").expect("pinned workload")
}

fn request<'a>(wl: &'a Workload, axes: &'a [Axis]) -> SupervisedSweepRequest<'a> {
    SupervisedSweepRequest {
        workload: wl,
        base_cfg: SystemConfig::default(),
        axes,
        scheme: "fpb",
        baseline: "dimm-chip",
        opts: SimOptions::with_instructions(INSTRUCTIONS),
        policy: SupervisePolicy { backoff_base_ms: 1, backoff_cap_ms: 2, ..SupervisePolicy::default() },
        journal: None,
        cancel: CancelToken::new(),
        cancel_after: None,
        inject_panic: None,
        reuse: ReuseOptions::default(),
    }
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("fpb-supervised-sweep-tests");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let p = dir.join(name);
    std::fs::remove_file(&p).ok();
    p
}

#[test]
fn supervised_matches_plain_sweep_bit_for_bit() {
    let wl = workload();
    let axes = axes();
    let plain = run_sweep_jobs(
        &wl,
        SystemConfig::default(),
        &axes,
        "fpb",
        "dimm-chip",
        &SimOptions::with_instructions(INSTRUCTIONS),
        1,
    );
    for jobs in [1, 3] {
        let mut req = request(&wl, &axes);
        req.policy.jobs = jobs;
        let run = run_sweep_supervised(req).expect("healthy sweep");
        assert!(run.complete() && !run.cancelled);
        assert_eq!(run.points.len(), plain.len());
        for (rec, expect) in run.points.iter().zip(&plain) {
            assert_eq!(rec.outcome, JobOutcome::Ok);
            let PointState::Done(point) = &rec.state else {
                panic!("expected Done, got {:?}", rec.state)
            };
            assert_eq!(point.label, expect.label, "jobs={jobs}");
            assert_eq!(point.metrics, expect.metrics, "jobs={jobs} {}", expect.label);
            assert_eq!(point.baseline, expect.baseline, "jobs={jobs} {}", expect.label);
        }
    }
}

#[test]
fn deterministic_panic_quarantines_one_point_and_finishes_the_grid() {
    let wl = workload();
    let axes = axes();
    let mut req = request(&wl, &axes);
    req.policy.jobs = 2;
    req.inject_panic = Some(PanicInjection { point: 2, attempts: u32::MAX });
    let run = run_sweep_supervised(req).expect("sweep itself succeeds");
    assert_eq!(run.count("ok"), 3);
    assert_eq!(run.count("panicked"), 1);
    assert!(!run.cancelled, "quarantine must not cancel the rest of the grid");
    let q = run.quarantined();
    assert_eq!(q.len(), 1);
    assert_eq!(q[0].index, 2);
    let JobOutcome::Panicked { attempts, message } = &q[0].outcome else {
        panic!("expected Panicked, got {:?}", q[0].outcome)
    };
    assert_eq!(*attempts, 1, "no retries configured");
    assert!(message.contains("injected panic at point 2"), "{message}");
    let json = run.to_json();
    assert!(json.contains("\"panicked\": 1,"), "{json}");
    assert!(json.contains("\"class\": \"panicked\""), "{json}");
}

#[test]
fn transient_panic_is_retried_and_metrics_match_clean_run() {
    let wl = workload();
    let axes = axes();
    let clean = {
        let req = request(&wl, &axes);
        run_sweep_supervised(req).expect("clean run")
    };
    let mut req = request(&wl, &axes);
    req.policy.max_retries = 2;
    req.inject_panic = Some(PanicInjection { point: 1, attempts: 1 });
    let run = run_sweep_supervised(req).expect("retried run");
    assert_eq!(run.points[1].outcome, JobOutcome::Retried { attempts: 2 });
    assert!(run.complete());
    let (PointState::Done(a), PointState::Done(b)) =
        (&run.points[1].state, &clean.points[1].state)
    else {
        panic!("both runs must complete point 1")
    };
    assert_eq!(a.metrics, b.metrics, "retried result must equal a clean run's");
}

fn journaled_run(
    wl: &Workload,
    axes: &[Axis],
    mode: JournalMode,
    cancel_after: Option<usize>,
) -> Result<SweepRun, SweepError> {
    let mut req = request(wl, axes);
    req.journal = Some(mode);
    req.cancel_after = cancel_after;
    run_sweep_supervised(req)
}

#[test]
fn interrupted_then_resumed_sweep_renders_byte_identical_json() {
    let wl = workload();
    let axes = axes();
    let clean = run_sweep_supervised(request(&wl, &axes)).expect("clean run");
    assert!(clean.complete());

    // Run with a journal, cancelling after 2 completed points (the
    // deterministic stand-in for Ctrl-C mid-sweep).
    let path = tmp("resume_identity.fpbj");
    let partial = journaled_run(&wl, &axes, JournalMode::Fresh(path.clone()), Some(2))
        .expect("partial run");
    assert!(partial.cancelled);
    // One worker: exactly 2 points complete, the rest are skipped.
    let done_first = partial.count("ok");
    assert_eq!(done_first, 2);
    assert_eq!(partial.count("skipped"), 2);

    // Resume: restored points + the remainder, byte-identical JSON.
    let resumed = journaled_run(&wl, &axes, JournalMode::Resume(path.clone()), None)
        .expect("resumed run");
    assert!(resumed.complete() && !resumed.cancelled);
    assert_eq!(resumed.restored, done_first);
    assert_eq!(resumed.dropped_journal_lines, 0);
    assert_eq!(
        resumed.to_json(),
        clean.to_json(),
        "resumed sweep must render byte-identical JSON to an uninterrupted run"
    );

    // Resuming a *finished* journal restores everything and still
    // renders identical bytes.
    let re_resumed = journaled_run(&wl, &axes, JournalMode::Resume(path.clone()), None)
        .expect("re-resumed run");
    assert_eq!(re_resumed.restored, 4);
    assert_eq!(re_resumed.to_json(), clean.to_json());
    std::fs::remove_file(&path).ok();
}

#[test]
fn crash_at_point_k_then_resume_is_byte_identical() {
    let wl = workload();
    let axes = axes();
    let clean = run_sweep_supervised(request(&wl, &axes)).expect("clean run");

    // "Crash": a deterministic panic at point 1 quarantines it; every
    // other point completes and is journaled.
    let path = tmp("crash_resume.fpbj");
    let mut req = request(&wl, &axes);
    req.journal = Some(JournalMode::Fresh(path.clone()));
    req.inject_panic = Some(PanicInjection { point: 1, attempts: u32::MAX });
    let crashed = run_sweep_supervised(req).expect("crashed run still reports");
    assert_eq!(crashed.count("panicked"), 1);
    assert_eq!(crashed.count("ok"), 3);

    // Resume without the injection: only the quarantined point reruns,
    // and the final document matches the uninterrupted run exactly.
    let resumed = journaled_run(&wl, &axes, JournalMode::Resume(path.clone()), None)
        .expect("resumed run");
    assert_eq!(resumed.restored, 3);
    assert!(resumed.complete());
    assert_eq!(resumed.to_json(), clean.to_json());
    std::fs::remove_file(&path).ok();
}

#[test]
fn warm_cache_completes_journaled_sweeps_and_journal_outranks_cache() {
    let wl = workload();
    let axes = axes();
    let clean = run_sweep_supervised(request(&wl, &axes)).expect("clean run");

    // Seed the result cache with a full unjournaled sweep.
    let cache = tmp("warm_cache.v1");
    let mut req = request(&wl, &axes);
    req.reuse.cache = Some(cache.clone());
    let seeded = run_sweep_supervised(req).expect("seeding run");
    assert_eq!(seeded.reuse.cache_hits, 0);
    assert!(seeded.reuse.simulated > 0);
    assert_eq!(seeded.to_json(), clean.to_json(), "cache writes must not change results");

    // A journaled run over the warm cache completes without simulating:
    // every point is cache-ready and journaled before supervision, and
    // --cancel-after never trips (it counts simulated points only).
    let path = tmp("warm_cache.fpbj");
    let mut req = request(&wl, &axes);
    req.journal = Some(JournalMode::Fresh(path.clone()));
    req.cancel_after = Some(2);
    req.reuse.cache = Some(cache.clone());
    let warm = run_sweep_supervised(req).expect("warm run");
    assert_eq!(warm.reuse.simulated, 0, "{:?}", warm.reuse);
    assert_eq!(warm.reuse.cache_hits, warm.reuse.runs_unique);
    assert!(warm.complete() && !warm.cancelled);
    assert_eq!(warm.to_json(), clean.to_json(), "cache splice must be byte-identical");

    // Resuming the finished journal restores every point from the
    // journal; the cache is never consulted — the journal outranks it.
    let mut req = request(&wl, &axes);
    req.journal = Some(JournalMode::Resume(path.clone()));
    req.reuse.cache = Some(cache.clone());
    let resumed = run_sweep_supervised(req).expect("resumed run");
    assert_eq!(resumed.restored, 4);
    assert_eq!(resumed.reuse.runs_total, 0, "journal splice must win over cache splice");
    assert_eq!(resumed.reuse.cache_hits, 0);
    assert_eq!(resumed.to_json(), clean.to_json());
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&cache).ok();
}

#[test]
fn injected_panic_fires_even_with_a_warm_cache() {
    let wl = workload();
    let axes = axes();
    // Warm the cache over the whole grid first.
    let cache = tmp("inject_bypass.v1");
    let mut req = request(&wl, &axes);
    req.reuse.cache = Some(cache.clone());
    run_sweep_supervised(req).expect("seeding run");

    // The poisoned point's units are salted out of cache and dedup, so
    // the panic still fires; the other points splice from the cache.
    let mut req = request(&wl, &axes);
    req.reuse.cache = Some(cache.clone());
    req.inject_panic = Some(PanicInjection { point: 2, attempts: u32::MAX });
    let run = run_sweep_supervised(req).expect("sweep itself succeeds");
    assert_eq!(run.count("panicked"), 1, "warm cache must not disarm --inject-panic");
    assert_eq!(run.count("ok"), 3);
    assert_eq!(run.quarantined()[0].index, 2);
    std::fs::remove_file(&cache).ok();
}

#[test]
fn resume_refuses_a_journal_from_a_different_sweep() {
    let wl = workload();
    let axes = axes();
    let path = tmp("wrong_sweep.fpbj");
    journaled_run(&wl, &axes, JournalMode::Fresh(path.clone()), Some(1)).expect("seed journal");

    // Same journal, different scheme: the fingerprint must not match.
    let mut req = request(&wl, &axes);
    req.scheme = "gcp";
    req.journal = Some(JournalMode::Resume(path.clone()));
    let err = run_sweep_supervised(req).expect_err("must refuse");
    assert!(matches!(err, SweepError::Journal(_)));
    assert!(err.to_string().contains("different sweep"), "{err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn fresh_journal_refuses_to_clobber() {
    let wl = workload();
    let axes = axes();
    let path = tmp("no_clobber_sweep.fpbj");
    journaled_run(&wl, &axes, JournalMode::Fresh(path.clone()), Some(1)).expect("first run");
    let err = journaled_run(&wl, &axes, JournalMode::Fresh(path.clone()), None)
        .expect_err("must refuse");
    assert!(err.to_string().contains("already exists"), "{err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn bad_specs_and_axes_error_instead_of_panicking() {
    let wl = workload();
    let axes = axes();
    let mut req = request(&wl, &axes);
    req.scheme = "warp-drive";
    let err = run_sweep_supervised(req).expect_err("unknown scheme must be rejected");
    assert!(matches!(err, SweepError::Spec(_)));

    let req = request(&wl, &[]);
    let err = run_sweep_supervised(req).expect_err("empty axes must be rejected");
    assert!(matches!(err, SweepError::Axes(_)));
}
