//! Property tests for record → replay: across arbitrary seeds, schemes,
//! and fault mixes, a run recorded to an on-disk event log and read back
//! reconstructs `Timeline::record`'s output and the final `Metrics`
//! byte-identically — including when the recorded runs execute on
//! parallel sweep workers (`--jobs 2`).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use fpb_sim::engine::run_workload_recorded;
use fpb_sim::exec::parallel_map_indexed;
use fpb_sim::inspect::{read_event_log, EventLogWriter, MemorySink, ReplayedRun};
use fpb_sim::scheme::SchemeRegistry;
use fpb_sim::timeline::Timeline;
use fpb_sim::{Metrics, SimOptions, System};
use fpb_trace::catalog;
use fpb_types::{FaultConfig, SystemConfig};

static CASE: AtomicU64 = AtomicU64::new(0);

fn tmp() -> PathBuf {
    let dir = std::env::temp_dir().join("fpb-inspect-replay-proptests");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let n = CASE.fetch_add(1, Ordering::SeqCst);
    let p = dir.join(format!("case-{}-{n}.fpbi", std::process::id()));
    std::fs::remove_file(&p).ok();
    p
}

const SPECS: [&str; 4] = ["dimm-chip", "fpb", "gcp:ne:0.5", "fpb+wc+wp+wt8"];
const INSTRUCTIONS: u64 = 8_000;

fn cfg_for(seed: u64, faulty: bool) -> SystemConfig {
    let mut cfg = SystemConfig::default();
    cfg.seed = seed;
    if faulty {
        cfg = cfg.with_faults(FaultConfig {
            verify_fail_prob: 0.25,
            stuck_cell_prob: 0.1,
            stuck_wear_threshold: 1,
            brownout_period: 60_000,
            brownout_duration: 20_000,
            max_retries: 2,
            retry_backoff_cycles: 64,
            watchdog_iterations: 250,
            degraded_after_cycles: 15_000,
            ..FaultConfig::default()
        });
    }
    cfg
}

/// Records one run and checks the full pipeline: in-memory events ==
/// file round-trip events, derived metrics byte-identical to inline,
/// replayed timeline identical to a live `Timeline::record`.
fn check_one(seed: u64, spec: &str, faulty: bool) -> Result<(), TestCaseError> {
    let cfg = cfg_for(seed, faulty);
    let wl = catalog::workload("mcf_m").expect("workload");
    let setup = SchemeRegistry::standard().build(spec, &cfg).expect("spec");
    let opts = SimOptions::with_instructions(INSTRUCTIONS);

    let live = Timeline::record(System::new(&wl, &cfg, &setup, &opts));
    let (inline, sink) =
        run_workload_recorded(&wl, &cfg, &setup, &opts, MemorySink::new()).expect("recorded");
    prop_assert_eq!(&inline, live.metrics(), "sink perturbed the run");

    // Through the on-disk log and back.
    let path = tmp();
    let mut w = EventLogWriter::create(&path, &format!("seed={seed} spec={spec}"))
        .expect("create log");
    for ev in sink.events() {
        w.append(ev).expect("append");
    }
    let written = w.finish().expect("finish");
    prop_assert_eq!(written as usize, sink.events().len());
    let log = read_event_log(&path).expect("read back");
    prop_assert!(log.complete);
    prop_assert_eq!(log.dropped_lines, 0);
    prop_assert_eq!(&log.events, sink.events(), "file round-trip changed the stream");
    std::fs::remove_file(&path).ok();

    let replayed = ReplayedRun::from_events(&log.events);
    prop_assert_eq!(
        replayed.metrics.to_json(),
        inline.to_json(),
        "derived metrics drifted (seed={}, spec={}, faulty={})",
        seed,
        spec,
        faulty
    );
    prop_assert_eq!(replayed.timeline.samples(), live.samples());
    prop_assert_eq!(replayed.timeline.metrics(), live.metrics());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn record_replay_reconstructs_run_byte_identically(
        seed in 0u64..1_000_000,
        spec_idx in 0usize..SPECS.len(),
        faulty in any::<bool>(),
    ) {
        check_one(seed, SPECS[spec_idx], faulty)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The same reconstruction guarantee when recorded runs execute on
    /// two sweep worker threads (`--jobs 2`): workers record
    /// independent streams, and each stream still derives the metrics
    /// its own serial run produces.
    #[test]
    fn record_replay_holds_under_two_parallel_jobs(
        seed in 0u64..1_000_000,
        faulty in any::<bool>(),
    ) {
        let wl = catalog::workload("mcf_m").expect("workload");
        let opts = SimOptions::with_instructions(INSTRUCTIONS);
        let points: Vec<(u64, &str)> =
            vec![(seed, "fpb"), (seed.wrapping_add(1), "dimm-chip"), (seed, "fpb+wc")];

        let serial: Vec<Metrics> = points
            .iter()
            .map(|&(s, spec)| {
                let cfg = cfg_for(s, faulty);
                let setup = SchemeRegistry::standard().build(spec, &cfg).expect("spec");
                fpb_sim::run_workload(&wl, &cfg, &setup, &opts)
            })
            .collect();

        let replayed: Vec<(Metrics, String)> = parallel_map_indexed(&points, 2, |_, &(s, spec)| {
            let cfg = cfg_for(s, faulty);
            let setup = SchemeRegistry::standard().build(spec, &cfg).expect("spec");
            let opts = SimOptions::with_instructions(INSTRUCTIONS);
            let (inline, sink) =
                run_workload_recorded(&wl, &cfg, &setup, &opts, MemorySink::new())
                    .expect("recorded");
            let derived = ReplayedRun::from_events(sink.events()).metrics;
            (inline, derived.to_json())
        });

        for ((inline, derived_json), want) in replayed.iter().zip(&serial) {
            prop_assert_eq!(inline, want, "parallel recording drifted from serial run");
            prop_assert_eq!(derived_json, &want.to_json(), "parallel replay drifted");
        }
    }
}
