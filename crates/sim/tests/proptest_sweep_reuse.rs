//! Property: result reuse never changes sweep output. For arbitrary
//! grids, schemes, and worker counts, the points produced with semantic
//! dedup on (and with a persistent cache, cold or warm) are identical —
//! labels, ordering, and full `Metrics` of both runs per point — to the
//! points produced with reuse fully disabled.
//!
//! Duplicate axis values are deliberately allowed by the strategies:
//! they manufacture equivalence classes larger than one, so the dedup
//! path (not just the singleton path) is exercised on most cases.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use fpb_sim::bench::points_identical;
use fpb_sim::sweep::{run_sweep_jobs_reuse, Axis, ReuseOptions};
use fpb_sim::SimOptions;
use fpb_trace::catalog;
use fpb_types::SystemConfig;

static CASE: AtomicU64 = AtomicU64::new(0);

fn tmp_cache() -> PathBuf {
    let dir = std::env::temp_dir().join("fpb-sweep-reuse-proptests");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let n = CASE.fetch_add(1, Ordering::SeqCst);
    let p = dir.join(format!("case-{}-{n}.v1", std::process::id()));
    std::fs::remove_file(&p).ok();
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn reuse_is_invisible_in_sweep_output(
        pts in prop::collection::vec(420u64..700, 1..4),
        egcp_pcts in prop::collection::vec(30u32..95, 1..3),
        line_idx in 0usize..3,
        scheme_idx in 0usize..3,
        jobs in 1usize..4,
        instructions in 300u64..800,
    ) {
        let lines: [&[u32]; 3] = [&[64], &[128], &[256]];
        let schemes = ["fpb", "gcp", "ideal"];
        let egcps: Vec<f64> = egcp_pcts.iter().map(|&e| f64::from(e) / 100.0).collect();
        let axes = vec![
            Axis::line_bytes(lines[line_idx]),
            Axis::pt_dimm(&pts),
            Axis::e_gcp(&egcps),
        ];
        let wl = catalog::workload("mcf_m").expect("pinned workload");
        let cfg = SystemConfig::default();
        let opts = SimOptions::with_instructions(instructions);
        let scheme = schemes[scheme_idx];
        let run = |reuse: &ReuseOptions| {
            run_sweep_jobs_reuse(
                &wl, cfg.clone(), &axes, scheme, "dimm-chip", &opts, jobs, reuse,
            )
        };

        // Level 0: reuse fully off — one engine run per simulation.
        let (off, off_stats) = run(&ReuseOptions::disabled());
        prop_assert_eq!(off_stats.runs_unique, off_stats.runs_total);
        prop_assert_eq!(off_stats.cache_hits, 0);

        // Level 1: semantic dedup.
        let (on, on_stats) = run(&ReuseOptions::default());
        prop_assert!(on_stats.runs_unique <= on_stats.runs_total);
        prop_assert_eq!(on_stats.simulated, on_stats.runs_unique);
        prop_assert!(
            points_identical(&off, &on),
            "dedup changed sweep output (scheme {}, {} points)", scheme, off.len()
        );

        // Level 2: persistent cache, cold then warm.
        let cache = tmp_cache();
        let with_cache = ReuseOptions { dedup: true, cache: Some(cache.clone()) };
        let (cold, cold_stats) = run(&with_cache);
        prop_assert_eq!(cold_stats.cache_hits, 0);
        prop_assert!(points_identical(&off, &cold), "cold cache changed sweep output");
        let (warm, warm_stats) = run(&with_cache);
        prop_assert_eq!(warm_stats.simulated, 0, "warm cache re-simulated");
        prop_assert_eq!(warm_stats.cache_hits, warm_stats.runs_unique);
        prop_assert!(points_identical(&off, &warm), "warm cache changed sweep output");
        std::fs::remove_file(&cache).ok();
    }
}
