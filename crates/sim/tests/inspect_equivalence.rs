//! Derive-vs-inline equivalence: the recorded lifecycle event stream is
//! a *complete* record of a run.
//!
//! Three guarantees, each load-bearing for `fpb inspect`:
//!
//! 1. **Observation is free** — recording through a sink must not
//!    perturb the simulation: recorded-run metrics are bit-identical to
//!    a plain run's.
//! 2. **Derivation is exact** — folding the event stream back through
//!    [`MetricsDeriver`] reproduces the engine's inline [`Metrics`]
//!    byte-for-byte (`to_json` compared verbatim) for every registered
//!    paper-figure spec and under full fault injection.
//! 3. **Replay is lossless** — the timeline reconstructed from
//!    `StepSnapshot` events equals what [`Timeline::record`] samples on
//!    a live system.

use fpb_sim::inspect::{MemorySink, ReplayedRun};
use fpb_sim::scheme::SchemeRegistry;
use fpb_sim::timeline::Timeline;
use fpb_sim::{run_workload, run_workload_recorded, SimOptions, System};
use fpb_trace::catalog;
use fpb_types::{FaultConfig, SystemConfig};

const INSTRUCTIONS: u64 = 20_000;

fn opts() -> SimOptions {
    SimOptions::with_instructions(INSTRUCTIONS)
}

/// A fault mix exercising every recovery path the events must cover:
/// verify failures deep enough to remap, brownouts long enough to
/// degrade, stuck-at marking, and the watchdog.
fn faulty_cfg() -> SystemConfig {
    SystemConfig::default().with_faults(FaultConfig {
        verify_fail_prob: 0.3,
        stuck_cell_prob: 0.2,
        stuck_wear_threshold: 1,
        brownout_period: 120_000,
        brownout_duration: 50_000,
        max_retries: 2,
        retry_backoff_cycles: 100,
        watchdog_iterations: 200,
        degraded_after_cycles: 10_000,
        ..FaultConfig::default()
    })
}

#[test]
fn all_paper_figure_specs_derive_byte_identical_metrics() {
    let cfg = SystemConfig::default();
    let wl = catalog::workload("mcf_m").expect("workload");
    let registry = SchemeRegistry::standard();
    let specs = registry.paper_figure_specs();
    assert!(specs.len() >= 21, "paper figure registry shrank: {}", specs.len());
    for spec in specs {
        let setup = registry.build(spec, &cfg).unwrap_or_else(|e| panic!("{spec}: {e}"));
        let inline = run_workload(&wl, &cfg, &setup, &opts());
        let (recorded, sink) =
            run_workload_recorded(&wl, &cfg, &setup, &opts(), MemorySink::new())
                .unwrap_or_else(|e| panic!("{spec}: {e}"));
        assert_eq!(recorded, inline, "{spec}: recording perturbed the run");
        let derived = ReplayedRun::from_events(sink.events()).metrics;
        assert_eq!(
            derived.to_json(),
            inline.to_json(),
            "{spec}: derived metrics drifted from inline tallies"
        );
        assert_eq!(derived, inline, "{spec}: structural mismatch");
    }
}

#[test]
fn fault_injected_run_derives_byte_identical_metrics() {
    let cfg = faulty_cfg();
    let wl = catalog::workload("mcf_m").expect("workload");
    let registry = SchemeRegistry::standard();
    let setup = registry.build("fpb", &cfg).expect("fpb spec");
    let inline = run_workload(&wl, &cfg, &setup, &opts());
    // The fault mix must actually fire, or this test proves nothing.
    assert!(inline.faults.verify_failures > 0, "{:?}", inline.faults);
    assert!(inline.faults.brownout_windows > 0, "{:?}", inline.faults);
    let (recorded, sink) =
        run_workload_recorded(&wl, &cfg, &setup, &opts(), MemorySink::new()).expect("recorded");
    assert_eq!(recorded, inline, "recording perturbed the faulty run");
    let derived = ReplayedRun::from_events(sink.events()).metrics;
    assert_eq!(derived.to_json(), inline.to_json());
    assert_eq!(derived.faults, inline.faults, "fault counters must derive exactly");
}

#[test]
fn replayed_timeline_matches_live_recording() {
    let cfg = SystemConfig::default();
    let wl = catalog::workload("lbm_m").expect("workload");
    let registry = SchemeRegistry::standard();
    let setup = registry.build("fpb", &cfg).expect("fpb spec");
    let live = Timeline::record(System::new(&wl, &cfg, &setup, &opts()));
    let (_, sink) =
        run_workload_recorded(&wl, &cfg, &setup, &opts(), MemorySink::new()).expect("recorded");
    let replayed = ReplayedRun::from_events(sink.events());
    assert_eq!(
        replayed.timeline.samples(),
        live.samples(),
        "replay must reconstruct the sampled timeline exactly"
    );
    assert_eq!(replayed.timeline.metrics(), live.metrics());
    // The rendered chart — the user-facing artifact — is identical too.
    assert_eq!(
        replayed.timeline.render(60).expect("render"),
        live.render(60).expect("render")
    );
}

#[test]
fn event_stream_round_trips_through_the_wire_codec() {
    // Every event an actual run emits must survive encode/decode — the
    // on-disk log stores exactly these lines.
    use fpb_sim::inspect::LifecycleEvent;
    let cfg = faulty_cfg();
    let wl = catalog::workload("mcf_m").expect("workload");
    let registry = SchemeRegistry::standard();
    let setup = registry.build("fpb+wc+wp+wt8", &cfg).expect("spec");
    let (_, sink) =
        run_workload_recorded(&wl, &cfg, &setup, &opts(), MemorySink::new()).expect("recorded");
    assert!(!sink.events().is_empty());
    for ev in sink.events() {
        let line = ev.encode();
        assert_eq!(
            LifecycleEvent::decode(&line).as_ref(),
            Some(ev),
            "wire round-trip failed for {line}"
        );
    }
}
