//! Registry smoke suite: every scheme the paper's figures rely on must
//! be constructible by name, self-consistent, and runnable.
//!
//! Three layers of guarantees:
//!
//! 1. **Round-tripping** — for every registered spec,
//!    `parse(render(spec))` yields the identical [`SchemeSpec`] *and*
//!    the identical [`SchemeSetup`] (labels, policy, every component),
//!    so spec strings printed in reports can be pasted back into
//!    `--scheme` without drift.
//! 2. **Validation + smoke runs** — every registry entry and every
//!    paper-figure spec passes [`Scheme::validate`] and completes a
//!    1k-instruction simulation.
//! 3. **Grammar fuzz** — random base/modifier compositions either fail
//!    to build with a stable error or build to the same setup after a
//!    render round-trip.

use fpb_sim::engine::{run_workload_warmed, warm_cores};
use fpb_sim::scheme::{Scheme, SchemeRegistry, SchemeSpec};
use fpb_sim::SimOptions;
use fpb_trace::catalog;
use fpb_types::SystemConfig;
use proptest::prelude::*;

/// Specs beyond the registry's own lists exercising every grammar corner.
const EXTRA_SPECS: &[&str] = &[
    "gcp:ne",
    "gcp:vim:0.5",
    "gcp:bim:0.95",
    "3xlocal",
    "fpb-mr:5",
    "fpb+wc+wt4",
    "dimm-chip+vim",
    "IDEAL", // case-insensitive
];

fn all_specs() -> Vec<String> {
    let registry = SchemeRegistry::standard();
    registry
        .names()
        .iter()
        .copied()
        .chain(registry.paper_figure_specs().iter().copied())
        .chain(EXTRA_SPECS.iter().copied())
        .map(str::to_string)
        .collect()
}

#[test]
fn every_spec_round_trips_through_render() {
    let cfg = SystemConfig::default();
    let registry = SchemeRegistry::standard();
    for spec_str in all_specs() {
        let spec: SchemeSpec = spec_str.parse().unwrap_or_else(|e| {
            panic!("spec `{spec_str}` failed to parse: {e}");
        });
        let rendered = spec.render();
        let reparsed: SchemeSpec = rendered.parse().unwrap_or_else(|e| {
            panic!("render of `{spec_str}` (`{rendered}`) failed to reparse: {e}");
        });
        assert_eq!(
            spec, reparsed,
            "`{spec_str}` round-tripped to a different spec via `{rendered}`"
        );
        let built = registry
            .build_spec(&spec, &cfg)
            .unwrap_or_else(|e| panic!("spec `{spec_str}` failed to build: {e}"));
        let rebuilt = registry
            .build_spec(&reparsed, &cfg)
            .unwrap_or_else(|e| panic!("reparse of `{spec_str}` failed to build: {e}"));
        assert_eq!(
            built, rebuilt,
            "`{spec_str}` built different setups before and after rendering"
        );
    }
}

#[test]
fn every_spec_validates() {
    let cfg = SystemConfig::default();
    let registry = SchemeRegistry::standard();
    for spec_str in all_specs() {
        let setup = registry
            .build(&spec_str, &cfg)
            .unwrap_or_else(|e| panic!("spec `{spec_str}`: {e}"));
        setup
            .validate()
            .unwrap_or_else(|e| panic!("spec `{spec_str}` failed validate(): {e}"));
        assert!(!setup.label.is_empty(), "spec `{spec_str}` has no label");
    }
}

#[test]
fn every_paper_figure_spec_survives_a_smoke_run() {
    let cfg = SystemConfig::default();
    let registry = SchemeRegistry::standard();
    let wl = catalog::workload("mcf_m").expect("pinned workload in catalog");
    let opts = SimOptions::with_instructions(1_000);
    // One warm-up shared across schemes: identical initial cache state,
    // and the suite stays fast enough for every CI run.
    let cores = warm_cores(&wl, &cfg, &opts);
    for spec_str in registry.paper_figure_specs() {
        let setup = registry
            .build(spec_str, &cfg)
            .unwrap_or_else(|e| panic!("spec `{spec_str}`: {e}"));
        let m = run_workload_warmed(&wl, &cfg, &setup, &opts, &cores);
        assert!(m.cycles > 0, "spec `{spec_str}` simulated zero cycles");
        assert!(
            m.instructions_per_core >= 1_000,
            "spec `{spec_str}` retired too few instructions: {}",
            m.instructions_per_core
        );
    }
}

#[test]
fn help_covers_every_registered_family() {
    let registry = SchemeRegistry::standard();
    let help = registry.help();
    // Families sharing a usage form (the `<scale>xlocal` pair) are
    // deduplicated in the listing, so assert on usage, not summary.
    for entry in registry.entries() {
        assert!(
            help.contains(entry.usage),
            "help text is missing the `{}` usage form",
            entry.name
        );
    }
}

/// Grammar atoms for the fuzzer: every base form and every modifier the
/// spec grammar accepts, composed by index mask.
const FUZZ_BASES: &[&str] = &[
    "ideal",
    "dimm-only",
    "dimm-chip",
    "pwl",
    "1.5xlocal",
    "2xlocal",
    "gcp",
    "gcp:ne",
    "gcp:vim:0.75",
    "gcp-ipm",
    "fpb",
    "fpb-mr:2",
];
const FUZZ_MODS: &[&str] = &[
    "wc", "wp", "wt4", "wt8", "preset", "worstcase", "reg", "ne", "vim", "bim",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any grammar-valid composition parses; rendering it and parsing
    /// again reaches the same spec, and building both sides of the
    /// round-trip gives the same outcome (equal setups, or the same
    /// rejection).
    #[test]
    fn random_compositions_round_trip(
        base_idx in 0usize..FUZZ_BASES.len(),
        mod_mask in 0u32..(1 << FUZZ_MODS.len()),
    ) {
        let mut spec_str = FUZZ_BASES[base_idx].to_string();
        for (i, m) in FUZZ_MODS.iter().enumerate() {
            if mod_mask & (1 << i) != 0 {
                spec_str.push('+');
                spec_str.push_str(m);
            }
        }
        let spec: SchemeSpec = spec_str
            .parse()
            .unwrap_or_else(|e| panic!("grammar-valid `{spec_str}` failed to parse: {e}"));
        let rendered = spec.render();
        let reparsed: SchemeSpec = rendered
            .parse()
            .unwrap_or_else(|e| panic!("render `{rendered}` failed to reparse: {e}"));
        prop_assert_eq!(&spec, &reparsed, "spec drift through `{}`", rendered);

        let cfg = SystemConfig::default();
        let registry = SchemeRegistry::standard();
        match (
            registry.build_spec(&spec, &cfg),
            registry.build_spec(&reparsed, &cfg),
        ) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "setup drift through `{}`", rendered),
            (Err(a), Err(b)) => {
                prop_assert_eq!(a.to_string(), b.to_string(), "error drift through `{}`", rendered);
            }
            (a, b) => prop_assert!(
                false,
                "`{}` built on one side of the round-trip only: {:?} vs {:?}",
                spec_str,
                a.map(|s| s.label),
                b.map(|s| s.label)
            ),
        }
    }
}
