//! Parallel sweep execution must be bit-for-bit identical to serial.
//!
//! The worker pool only changes *when* points run, never *what* they
//! compute: every sim run seeds its RNGs from the point's config, so the
//! grid is embarrassingly parallel and `--jobs N` must reproduce
//! `--jobs 1` exactly — labels, ordering, and every `Metrics` field of
//! both the scheme and baseline runs.

use fpb_sim::sweep::{run_sweep_jobs, Axis, SweepPoint};
use fpb_sim::SimOptions;
use fpb_trace::catalog;
use fpb_types::{FaultConfig, SystemConfig};

const INSTRUCTIONS: u64 = 3_000;

/// The 2-axis grid (2×2 = 4 points) every test sweeps.
fn grid_axes() -> Vec<Axis> {
    vec![Axis::pt_dimm(&[466, 560]), Axis::e_gcp(&[0.6, 0.9])]
}

fn sweep(cfg: &SystemConfig, jobs: usize) -> Vec<SweepPoint> {
    let wl = catalog::workload("mcf_m").expect("catalog workload");
    let opts = SimOptions::with_instructions(INSTRUCTIONS);
    run_sweep_jobs(
        &wl,
        cfg.clone(),
        &grid_axes(),
        "fpb",
        "dimm-chip",
        &opts,
        jobs,
    )
}

/// Full bit-for-bit comparison: same length, same labels in the same
/// order, equal scheme and baseline `Metrics` at every point.
fn assert_identical(serial: &[SweepPoint], parallel: &[SweepPoint], ctx: &str) {
    assert_eq!(serial.len(), parallel.len(), "{ctx}: point count differs");
    for (i, (s, p)) in serial.iter().zip(parallel).enumerate() {
        assert_eq!(s.label, p.label, "{ctx}: label differs at point {i}");
        assert_eq!(
            s.metrics, p.metrics,
            "{ctx}: scheme metrics differ at point {i} ({})",
            s.label
        );
        assert_eq!(
            s.baseline, p.baseline,
            "{ctx}: baseline metrics differ at point {i} ({})",
            s.label
        );
    }
}

#[test]
fn parallel_matches_serial_across_seeds() {
    for seed in [1u64, 42, 0xF9B] {
        let cfg = SystemConfig::default().with_seed(seed);
        let serial = sweep(&cfg, 1);
        assert_eq!(serial.len(), 4, "2x2 grid");
        for jobs in [2, 4] {
            let parallel = sweep(&cfg, jobs);
            assert_identical(&serial, &parallel, &format!("seed {seed}, jobs {jobs}"));
        }
    }
}

#[test]
fn parallel_matches_serial_with_fault_injection() {
    // Faults draw from per-run RNG streams seeded by the config, so
    // injection must not break determinism either.
    let mut cfg = SystemConfig::default().with_seed(7);
    cfg.faults = FaultConfig {
        verify_fail_prob: 0.25,
        stuck_cell_prob: 0.01,
        stuck_wear_threshold: 64,
        brownout_period: 10_000,
        brownout_duration: 2_000,
        ..FaultConfig::default()
    };
    cfg.validate().expect("fault config valid");

    let serial = sweep(&cfg, 1);
    let parallel = sweep(&cfg, 4);
    assert_identical(&serial, &parallel, "fault injection");
    assert!(
        serial
            .iter()
            .any(|p| p.metrics.faults.any_activity() || p.baseline.faults.any_activity()),
        "fault knobs this aggressive must produce observable fault activity"
    );
}

#[test]
fn more_jobs_than_points_matches_serial() {
    let cfg = SystemConfig::default().with_seed(99);
    let serial = sweep(&cfg, 1);
    let parallel = sweep(&cfg, 32);
    assert_identical(&serial, &parallel, "jobs > points");
}

#[test]
fn cost_schedule_is_results_invariant() {
    // A line-bytes axis gives the grid genuinely non-uniform cost
    // estimates (cells_per_line scales 4x across it), so the cost-aware
    // scheduler claims points far from input order — and the output must
    // not notice.
    let wl = catalog::workload("mcf_m").expect("catalog workload");
    let opts = SimOptions::with_instructions(1_500);
    let axes = vec![Axis::line_bytes(&[64, 256]), Axis::e_gcp(&[0.6, 0.9])];
    let cfg = SystemConfig::default().with_seed(5);
    let serial = run_sweep_jobs(&wl, cfg.clone(), &axes, "fpb", "dimm-chip", &opts, 1);
    assert_eq!(serial.len(), 4, "2x2 grid");
    for jobs in [2, 4] {
        let parallel = run_sweep_jobs(&wl, cfg.clone(), &axes, "fpb", "dimm-chip", &opts, jobs);
        assert_identical(&serial, &parallel, &format!("line-bytes grid, jobs {jobs}"));
    }
}
