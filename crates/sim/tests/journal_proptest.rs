//! Property tests for the sweep journal: arbitrary payloads round-trip
//! losslessly, and arbitrary tail corruption never destroys valid
//! records or sneaks an invalid one past the reader.

use std::fs::OpenOptions;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use fpb_sim::journal::{read_journal, JournalHeader, JournalWriter};

static CASE: AtomicU64 = AtomicU64::new(0);

fn tmp() -> PathBuf {
    let dir = std::env::temp_dir().join("fpb-journal-proptests");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let n = CASE.fetch_add(1, Ordering::SeqCst);
    let p = dir.join(format!("case-{}-{n}.fpbj", std::process::id()));
    std::fs::remove_file(&p).ok();
    p
}

/// Payload fragments: printable ASCII, newline-free (the writer's
/// contract). The vendored proptest shim has no regex strategies, so
/// the string is built from a byte vector.
fn payload_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(0x20u8..0x7f, 0..120)
        .prop_map(|bytes| bytes.into_iter().map(char::from).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn round_trip_preserves_every_record(
        fingerprint in any::<u64>(),
        meta in payload_strategy(),
        entries in prop::collection::vec((0usize..64, payload_strategy()), 0..24),
    ) {
        let header = JournalHeader { fingerprint, points: 64, meta };
        let path = tmp();
        let mut w = JournalWriter::create(&path, &header).expect("create");
        for (index, payload) in &entries {
            w.append_record(*index, payload).expect("append");
        }
        drop(w);

        let c = read_journal(&path).expect("read back");
        prop_assert_eq!(&c.header, &header);
        prop_assert_eq!(c.dropped_lines, 0);
        prop_assert_eq!(c.records.len(), entries.len());
        for (rec, (index, payload)) in c.records.iter().zip(&entries) {
            prop_assert_eq!(rec.index, *index);
            prop_assert_eq!(&rec.payload, payload);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn appended_garbage_never_corrupts_valid_records(
        entries in prop::collection::vec((0usize..16, payload_strategy()), 1..8),
        garbage in prop::collection::vec(any::<u8>(), 1..200),
    ) {
        let header = JournalHeader { fingerprint: 7, points: 16, meta: "prop".to_string() };
        let path = tmp();
        let mut w = JournalWriter::create(&path, &header).expect("create");
        for (index, payload) in &entries {
            w.append_record(*index, payload).expect("append");
        }
        drop(w);
        let clean_len = std::fs::metadata(&path).expect("meta").len();

        // A torn/overwritten tail: arbitrary bytes after the good region.
        let mut f = OpenOptions::new().append(true).open(&path).expect("open");
        f.write_all(&garbage).expect("write garbage");
        drop(f);

        match read_journal(&path) {
            Ok(c) => {
                // Whatever the garbage parsed as, every original record
                // survives, in order, and the valid region never extends
                // past bytes that verify.
                prop_assert!(c.records.len() >= entries.len());
                for (rec, (index, payload)) in c.records.iter().zip(&entries) {
                    prop_assert_eq!(rec.index, *index);
                    prop_assert_eq!(&rec.payload, payload);
                }
                prop_assert!(c.valid_bytes >= clean_len);

                // Resume truncates the tail; a re-read is then clean.
                let (w, recovered) = JournalWriter::resume(&path, &header).expect("resume");
                drop(w);
                prop_assert_eq!(recovered.records.len(), c.records.len());
                let reread = read_journal(&path).expect("re-read");
                prop_assert_eq!(reread.dropped_lines, 0);
                prop_assert_eq!(reread.records.len(), c.records.len());
            }
            Err(e) => {
                // Only a semantically-impossible CRC-valid record may
                // hard-error; random garbage essentially never builds
                // one, but if it does the refusal is the right call.
                prop_assert!(
                    e.to_string().contains("refusing to guess"),
                    "unexpected error: {e}"
                );
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_at_any_byte_keeps_a_valid_prefix(
        entries in prop::collection::vec((0usize..16, payload_strategy()), 1..6),
        cut_fraction in 0.0f64..1.0,
    ) {
        let header = JournalHeader { fingerprint: 9, points: 16, meta: "cut".to_string() };
        let path = tmp();
        let mut w = JournalWriter::create(&path, &header).expect("create");
        for (index, payload) in &entries {
            w.append_record(*index, payload).expect("append");
        }
        drop(w);
        let bytes = std::fs::read(&path).expect("read");
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        std::fs::write(&path, &bytes[..cut]).expect("truncate");

        match read_journal(&path) {
            Ok(c) => {
                // Kill-at-any-moment: the surviving records are a prefix
                // of what was written, unchanged.
                prop_assert!(c.records.len() <= entries.len());
                for (rec, (index, payload)) in c.records.iter().zip(&entries) {
                    prop_assert_eq!(rec.index, *index);
                    prop_assert_eq!(&rec.payload, payload);
                }
                prop_assert!(c.valid_bytes as usize <= cut);
            }
            Err(e) => {
                // The cut landed inside the header line.
                prop_assert!(
                    e.to_string().contains("no valid header"),
                    "unexpected error: {e}"
                );
            }
        }
        std::fs::remove_file(&path).ok();
    }
}
