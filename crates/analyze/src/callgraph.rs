//! The workspace call graph, built over the symbol table by name-based
//! resolution.
//!
//! Without type inference, call sites resolve *conservatively*:
//!
//! * `Type::name(...)` — definitions of `name` under impl `Type` only.
//!   Unknown types (std containers, external crates) resolve to nothing:
//!   a fallback to every `name` would wire `VecDeque::new()` to every
//!   constructor in the workspace.
//! * `recv.name(...)` — every method named `name` (any impl).
//! * `name(...)` — `Self::name` in the caller's own impl first, then free
//!   functions named `name`.
//!
//! A call can therefore fan out to several candidate definitions; for
//! reachability analyses an over-approximation errs on the side of
//! reporting, which is the right polarity for panic propagation and
//! taint. Unresolvable names (std/external methods) produce no edge.

use std::collections::BTreeSet;

use crate::semantic::{CallKind, FileFacts};
use crate::symbols::{FnId, SymbolTable};

/// A directed call graph over [`SymbolTable`] ids.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// `edges[caller]` = sorted, deduped `(callee, call-site line)`.
    pub edges: Vec<Vec<(FnId, u32)>>,
}

impl CallGraph {
    /// Builds the graph from the same facts the table was built from.
    pub fn build(table: &SymbolTable, facts: &[FileFacts]) -> CallGraph {
        let mut edges: Vec<BTreeSet<(FnId, u32)>> = vec![BTreeSet::new(); table.fns.len()];
        for (caller, sym) in table.fns.iter().enumerate() {
            let Some(fact) = table.fact(facts, caller) else {
                continue;
            };
            for call in &fact.calls {
                let candidates: Vec<FnId> = match &call.kind {
                    CallKind::Typed(ty) => table.typed(ty, &call.name).to_vec(),
                    CallKind::Method => table
                        .named(&call.name)
                        .iter()
                        .copied()
                        .filter(|&id| table.fns[id].has_self)
                        .collect(),
                    CallKind::Free => {
                        let own = sym
                            .self_ty
                            .as_deref()
                            .map(|ty| table.typed(ty, &call.name))
                            .unwrap_or(&[]);
                        if own.is_empty() {
                            table
                                .named(&call.name)
                                .iter()
                                .copied()
                                .filter(|&id| table.fns[id].self_ty.is_none())
                                .collect()
                        } else {
                            own.to_vec()
                        }
                    }
                };
                for callee in candidates {
                    edges[caller].insert((callee, call.line));
                }
            }
        }
        CallGraph {
            edges: edges.into_iter().map(|s| s.into_iter().collect()).collect(),
        }
    }

    /// Breadth-first shortest paths from `roots`. Returns per-node
    /// `Option<parent>` (roots have `Some(self)`), `None` = unreachable.
    /// Deterministic: roots seed in sorted order and neighbors expand in
    /// edge order, so ties always break the same way.
    pub fn shortest_paths(&self, roots: &[FnId]) -> Vec<Option<FnId>> {
        let mut parent: Vec<Option<FnId>> = vec![None; self.edges.len()];
        let mut queue = std::collections::VecDeque::new();
        let mut seeds: Vec<FnId> = roots.to_vec();
        seeds.sort_unstable();
        seeds.dedup();
        for &r in &seeds {
            if r < parent.len() && parent[r].is_none() {
                parent[r] = Some(r);
                queue.push_back(r);
            }
        }
        while let Some(n) = queue.pop_front() {
            for &(m, _) in &self.edges[n] {
                if parent[m].is_none() {
                    parent[m] = Some(n);
                    queue.push_back(m);
                }
            }
        }
        parent
    }

    /// Renders the shortest call chain from a root to `target` as
    /// `Root::fn → ... → target_fn`, given `shortest_paths` output.
    pub fn chain(&self, table: &SymbolTable, parent: &[Option<FnId>], target: FnId) -> String {
        let mut names = Vec::new();
        let mut cur = target;
        loop {
            names.push(table.fns[cur].qual());
            match parent[cur] {
                Some(p) if p != cur => cur = p,
                _ => break,
            }
        }
        names.reverse();
        names.join(" → ")
    }

    /// The set of nodes that can transitively *reach* any node in `to`
    /// (reverse reachability — used by taint: which functions can call
    /// into a source?).
    pub fn reaches(&self, to: &[FnId]) -> Vec<bool> {
        // Reverse adjacency.
        let mut rev: Vec<Vec<FnId>> = vec![Vec::new(); self.edges.len()];
        for (caller, outs) in self.edges.iter().enumerate() {
            for &(callee, _) in outs {
                rev[callee].push(caller);
            }
        }
        let mut hit = vec![false; self.edges.len()];
        let mut queue: std::collections::VecDeque<FnId> = to.iter().copied().collect();
        for &t in to {
            hit[t] = true;
        }
        while let Some(n) = queue.pop_front() {
            for &p in &rev[n] {
                if !hit[p] {
                    hit[p] = true;
                    queue.push_back(p);
                }
            }
        }
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantic::file_facts;

    fn graph(src: &str) -> (Vec<FileFacts>, SymbolTable, CallGraph) {
        let facts = vec![file_facts("x.rs", "sim", src)];
        let table = SymbolTable::build(&facts);
        let graph = CallGraph::build(&table, &facts);
        (facts, table, graph)
    }

    fn id(table: &SymbolTable, qual: &str) -> FnId {
        table
            .fns
            .iter()
            .position(|s| s.qual() == qual)
            .unwrap_or_else(|| panic!("no symbol {qual}"))
    }

    #[test]
    fn free_method_and_typed_calls_resolve() {
        let src = "fn leaf() {}\n\
                   impl Sys { fn run(&self) { self.step(); leaf(); Helper::go() } \n\
                              fn step(&self) {} }\n\
                   impl Helper { fn go() {} }";
        let (_, t, g) = graph(src);
        let run = id(&t, "Sys::run");
        let callees: Vec<String> = g.edges[run]
            .iter()
            .map(|&(c, _)| t.fns[c].qual())
            .collect();
        assert!(callees.contains(&"Sys::step".to_string()));
        assert!(callees.contains(&"leaf".to_string()));
        assert!(callees.contains(&"Helper::go".to_string()));
    }

    #[test]
    fn self_impl_wins_for_free_calls() {
        let src = "fn helper() {}\n\
                   impl A { fn helper() {} fn go(&self) { helper() } }";
        let (_, t, g) = graph(src);
        let go = id(&t, "A::go");
        let callees: Vec<String> = g.edges[go].iter().map(|&(c, _)| t.fns[c].qual()).collect();
        assert_eq!(callees, vec!["A::helper".to_string()]);
    }

    #[test]
    fn bfs_chain_is_shortest_and_deterministic() {
        let src = "impl S { fn run(&self) { self.a(); self.b() }\n\
                            fn a(&self) { self.c() }\n\
                            fn b(&self) { self.c() }\n\
                            fn c(&self) { } }";
        let (_, t, g) = graph(src);
        let run = id(&t, "S::run");
        let c = id(&t, "S::c");
        let parent = g.shortest_paths(&[run]);
        let chain = g.chain(&t, &parent, c);
        assert_eq!(chain, "S::run → S::a → S::c", "BFS must take the first-seeded shortest path");
    }

    #[test]
    fn reverse_reachability() {
        let src = "fn src_fn() {}\nfn mid() { src_fn() }\nfn sink() { mid() }\nfn other() {}";
        let (_, t, g) = graph(src);
        let hit = g.reaches(&[id(&t, "src_fn")]);
        assert!(hit[id(&t, "sink")]);
        assert!(hit[id(&t, "mid")]);
        assert!(!hit[id(&t, "other")]);
    }
}
