//! Workspace traversal: which `.rs` files get scanned, and which crate
//! each belongs to.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A source file selected for scanning.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SourceFile {
    /// Repo-relative path with `/` separators (stable diagnostics).
    pub rel_path: String,
    /// Crate key: the directory under `crates/`, or `fpb` for the root
    /// package's `src/`, `tests/`, `examples/`.
    pub crate_key: String,
    /// Absolute path on disk.
    pub abs_path: PathBuf,
}

/// Directory names never descended into.
const SKIP_DIRS: [&str; 5] = ["target", ".git", ".github", "shims", "fixtures"];

/// Collects every scannable `.rs` file under `root` (a workspace
/// checkout), sorted by path so scans are deterministic.
///
/// Skipped entirely: `target/`, `.git/`, the vendored dependency shims
/// (`crates/shims/` — API-compatibility stand-ins, not project code), and
/// any `fixtures/` directory (the lint engine's own test corpus of
/// seeded violations).
///
/// # Errors
///
/// Propagates I/O errors from directory traversal.
pub fn collect_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(SourceFile {
                crate_key: crate_key_of(&rel),
                rel_path: rel,
                abs_path: path,
            });
        }
    }
    Ok(())
}

/// Derives the crate key from a repo-relative path.
pub fn crate_key_of(rel_path: &str) -> String {
    let mut parts = rel_path.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or("unknown").to_string(),
        _ => "fpb".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_keys() {
        assert_eq!(crate_key_of("crates/core/src/ledger.rs"), "core");
        assert_eq!(crate_key_of("crates/sim/tests/parallel_sweep.rs"), "sim");
        assert_eq!(crate_key_of("src/cli.rs"), "fpb");
        assert_eq!(crate_key_of("tests/integration.rs"), "fpb");
        assert_eq!(crate_key_of("examples/quickstart.rs"), "fpb");
    }

    #[test]
    fn walk_skips_shims_fixtures_and_target() {
        // Walk this workspace (the crate's own manifest dir has the repo
        // root two levels up).
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let files = collect_sources(root).expect("walk workspace");
        assert!(!files.is_empty());
        assert!(files.iter().any(|f| f.rel_path == "crates/core/src/ledger.rs"));
        assert!(files.iter().all(|f| !f.rel_path.contains("target/")));
        assert!(files.iter().all(|f| !f.rel_path.contains("shims/")));
        assert!(files.iter().all(|f| !f.rel_path.contains("fixtures/")));
        // Deterministic order.
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted);
    }
}
