//! A minimal, zero-dependency Rust lexer.
//!
//! The lint rules need exactly four things the raw source cannot give
//! them directly: identifiers with line numbers, punctuation with
//! adjacency (to tell `.unwrap(` from the word "unwrap" in a string),
//! numeric literals tagged int-vs-float, and comments (for `SAFETY:`
//! checks and `fpb-lint:` directives). Everything else — strings, char
//! literals, lifetimes — is recognized only so its *contents* cannot be
//! mistaken for code. No `syn`, no registry dependencies: the scanner
//! must build in the same zero-network environment as the rest of the
//! workspace.

/// What a token is, as far as the lint rules care.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`unwrap`, `unsafe`, `as`, `HashMap`).
    Ident,
    /// A numeric literal. `float` is true for `1.5`, `2e9`, `1f64`.
    Num {
        /// True when the literal is a floating-point literal.
        float: bool,
    },
    /// A single punctuation character (`.`, `(`, `=`, `!`, ...).
    /// Multi-character operators appear as adjacent tokens.
    Punct(char),
    /// A string, byte-string, raw-string, or char literal (contents
    /// dropped).
    Literal,
    /// A lifetime (`'a`).
    Lifetime,
}

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Kind of token.
    pub kind: TokKind,
    /// Source text for identifiers and numbers; empty otherwise.
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

impl Token {
    /// True if this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// A comment with its position (line comments span one line; block
/// comments may span many).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment body, excluding the `//` / `/* */` markers.
    pub text: String,
    /// 1-based line the comment starts on.
    pub start_line: u32,
    /// 1-based line the comment ends on.
    pub end_line: u32,
}

/// The full result of lexing one file.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src`, never failing: unrecognized bytes become punctuation and
/// unterminated literals run to end-of-file. Lint rules prefer scanning
/// slightly-wrong token streams over refusing to scan a file.
pub fn lex(src: &str) -> Lexed {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    out: Lexed,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().peekable(),
            line: 1,
            out: Lexed::default(),
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next();
        if c == Some('\n') {
            self.line += 1;
        }
        c
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    /// Peeks two characters ahead without consuming (cloning a `Chars`
    /// iterator is cheap — it is a byte cursor).
    fn peek2(&mut self) -> Option<char> {
        let mut clone = self.chars.clone();
        clone.next();
        clone.next()
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek() {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' => match self.peek2() {
                    Some('/') => self.line_comment(),
                    Some('*') => self.block_comment(),
                    _ => {
                        self.bump();
                        self.push(TokKind::Punct('/'), String::new(), line);
                    }
                },
                '"' => self.string_literal(),
                '\'' => self.quote(),
                'r' | 'b' if self.raw_string_ahead() => self.raw_or_byte_string(),
                'r' if self.raw_ident_ahead() => {
                    // Raw identifier `r#match`: strip the `r#` prefix and
                    // lex the keyword-shaped name as a plain identifier.
                    self.bump();
                    self.bump();
                    self.ident();
                }
                'b' if self.peek2() == Some('\'') => {
                    // Byte char literal `b'x'`: one literal token, not a
                    // phantom `b` identifier followed by a char.
                    self.bump();
                    self.quote();
                }
                c if c.is_alphabetic() || c == '_' => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                c => {
                    self.bump();
                    self.push(TokKind::Punct(c), String::new(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let start = self.line;
        self.bump(); // /
        self.bump(); // /
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            text,
            start_line: start,
            end_line: start,
        });
    }

    fn block_comment(&mut self) {
        let start = self.line;
        self.bump(); // /
        self.bump(); // *
        let mut depth = 1u32;
        let mut text = String::new();
        while let Some(c) = self.bump() {
            if c == '/' && self.peek() == Some('*') {
                self.bump();
                depth += 1;
                text.push_str("/*");
            } else if c == '*' && self.peek() == Some('/') {
                self.bump();
                depth -= 1;
                if depth == 0 {
                    break;
                }
                text.push_str("*/");
            } else {
                text.push(c);
            }
        }
        self.out.comments.push(Comment {
            text,
            start_line: start,
            end_line: self.line,
        });
    }

    fn string_literal(&mut self) {
        let line = self.line;
        self.bump(); // "
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump(); // skip the escaped character
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokKind::Literal, String::new(), line);
    }

    /// `'` starts either a lifetime (`'a`, `'static`) or a char literal
    /// (`'x'`, `'\n'`). A lifetime is an identifier not followed by a
    /// closing quote.
    fn quote(&mut self) {
        let line = self.line;
        self.bump(); // '
        match self.peek() {
            Some(c) if (c.is_alphabetic() || c == '_') && self.peek2() != Some('\'') => {
                let mut text = String::new();
                while let Some(c) = self.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(TokKind::Lifetime, text, line);
            }
            Some('\\') => {
                self.bump(); // backslash
                self.bump(); // escaped char ('\x41' etc. ends at the quote)
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokKind::Literal, String::new(), line);
            }
            Some(_) => {
                self.bump(); // the char itself
                self.bump(); // closing quote
                self.push(TokKind::Literal, String::new(), line);
            }
            None => {
                self.push(TokKind::Punct('\''), String::new(), line);
            }
        }
    }

    /// True when the cursor sits on a raw/byte string opener: `r"`, `b"`,
    /// `br"`, or `r`/`br` followed by any run of `#` ending in `"`. A `#`
    /// run NOT ending in `"` is a raw identifier (`r#match`), not a
    /// string — treating it as one would swallow the rest of the file.
    fn raw_string_ahead(&mut self) -> bool {
        let mut clone = self.chars.clone();
        match clone.next() {
            Some('r') => {}
            Some('b') => match clone.next() {
                Some('"') => return true,
                Some('r') => {}
                _ => return false,
            },
            _ => return false,
        }
        match clone.next() {
            Some('"') => true,
            Some('#') => {
                let mut c = clone.next();
                while c == Some('#') {
                    c = clone.next();
                }
                c == Some('"')
            }
            _ => false,
        }
    }

    /// True when the cursor sits on a raw identifier: `r#` followed by an
    /// identifier-start character (`r#type`, `r#match`).
    fn raw_ident_ahead(&mut self) -> bool {
        let mut clone = self.chars.clone();
        clone.next() == Some('r')
            && clone.next() == Some('#')
            && clone.next().is_some_and(|c| c.is_alphabetic() || c == '_')
    }

    fn raw_or_byte_string(&mut self) {
        let line = self.line;
        let mut raw = false;
        // Consume the prefix letters (`r`, `b`, or `br`).
        while let Some(c) = self.peek() {
            if c == 'r' {
                raw = true;
                self.bump();
            } else if c == 'b' {
                self.bump();
            } else {
                break;
            }
        }
        if raw {
            let mut hashes = 0usize;
            while self.peek() == Some('#') {
                hashes += 1;
                self.bump();
            }
            self.bump(); // opening "
            // Scan to `"` followed by `hashes` hash marks.
            'outer: while let Some(c) = self.bump() {
                if c == '"' {
                    let mut clone = self.chars.clone();
                    for _ in 0..hashes {
                        if clone.next() != Some('#') {
                            continue 'outer;
                        }
                    }
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
            }
            self.push(TokKind::Literal, String::new(), line);
        } else {
            // Plain byte string `b"..."`: same escape rules as strings.
            self.string_literal();
        }
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident, text, line);
    }

    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let mut float = false;
        // Integer part (covers 0x/0o/0b prefixes: hex digits are consumed
        // as alphanumerics below).
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                if c == 'e' || c == 'E' {
                    // Exponent only counts as float in a decimal literal
                    // (`1e9`), not hex (`0xE`).
                    if !text.starts_with("0x") && !text.starts_with("0X") {
                        float = true;
                    }
                }
                text.push(c);
                self.bump();
            } else if c == '.' {
                // `1.5` is a float; `1..` is a range and `1.max()` is a
                // method call.
                match self.peek2() {
                    Some(d) if d.is_ascii_digit() => {
                        float = true;
                        text.push('.');
                        self.bump();
                    }
                    _ => break,
                }
            } else if (c == '+' || c == '-') && (text.ends_with('e') || text.ends_with('E')) {
                // Exponent sign: `1e-9`.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if text.ends_with("f32") || text.ends_with("f64") {
            float = true;
        }
        self.push(TokKind::Num { float }, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn idents_and_puncts_with_lines() {
        let l = lex("let x = a.unwrap();\nfoo()");
        let unwrap = l.tokens.iter().find(|t| t.is_ident("unwrap")).unwrap();
        assert_eq!(unwrap.line, 1);
        let foo = l.tokens.iter().find(|t| t.is_ident("foo")).unwrap();
        assert_eq!(foo.line, 2);
        assert!(l.tokens.iter().any(|t| t.is_punct('.')));
    }

    #[test]
    fn strings_hide_their_contents() {
        let l = lex(r#"let s = "x.unwrap() // not a comment"; y"#);
        assert_eq!(idents(r#"let s = "x.unwrap()"; y"#), vec!["let", "s", "y"]);
        assert!(l.comments.is_empty());
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r###"let s = r#"quote " inside"#; after"###;
        assert_eq!(idents(src), vec!["let", "s", "after"]);
        let src = "let b = b\"bytes\"; tail";
        assert_eq!(idents(src), vec!["let", "b", "tail"]);
    }

    #[test]
    fn char_literals_and_lifetimes() {
        assert_eq!(idents("let c = 'x'; d"), vec!["let", "c", "d"]);
        assert_eq!(idents(r"let c = '\n'; d"), vec!["let", "c", "d"]);
        let l = lex("fn f<'a>(x: &'a str) {}");
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "a"));
        // The lifetime must not swallow following tokens.
        assert!(l.tokens.iter().any(|t| t.is_ident("str")));
    }

    #[test]
    fn comments_are_captured_not_tokenized() {
        let l = lex("code(); // trailing unwrap() mention\n/* block\nspan */ more()");
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].text.contains("unwrap"));
        assert_eq!(l.comments[1].start_line, 2);
        assert_eq!(l.comments[1].end_line, 3);
        assert!(!l.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert!(l.tokens.iter().any(|t| t.is_ident("more")));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still comment */ code()");
        assert_eq!(l.comments.len(), 1);
        assert!(l.tokens.iter().any(|t| t.is_ident("code")));
    }

    #[test]
    fn numbers_int_vs_float() {
        let l = lex("1 2.5 1e9 0xE5 1_000 3f64 0.5 1..2 1.max(2)");
        let nums: Vec<(String, bool)> = l
            .tokens
            .iter()
            .filter_map(|t| match t.kind {
                TokKind::Num { float } => Some((t.text.clone(), float)),
                _ => None,
            })
            .collect();
        assert_eq!(
            nums,
            vec![
                ("1".into(), false),
                ("2.5".into(), true),
                ("1e9".into(), true),
                ("0xE5".into(), false),
                ("1_000".into(), false),
                ("3f64".into(), true),
                ("0.5".into(), true),
                ("1".into(), false),
                ("2".into(), false),
                ("1".into(), false),
                ("2".into(), false),
            ]
        );
        // `1.max(2)` keeps the method name.
        assert!(l.tokens.iter().any(|t| t.is_ident("max")));
    }

    #[test]
    fn raw_strings_with_multi_hash_delimiters() {
        // `r##"…"##` may contain `"#` sequences without terminating.
        let src = "let s = r##\"quote \"# inside\"##; after";
        assert_eq!(idents(src), vec!["let", "s", "after"]);
        let src = "let s = r###\"x\"## not yet \"###; tail";
        assert_eq!(idents(src), vec!["let", "s", "tail"]);
        // Empty raw string and zero-hash form.
        assert_eq!(idents("let s = r\"\"; t"), vec!["let", "s", "t"]);
        assert_eq!(idents("let s = r#\"\"#; t"), vec!["let", "s", "t"]);
    }

    #[test]
    fn raw_identifiers_are_identifiers_not_strings() {
        // `r#match` must not open a raw string and swallow the file.
        let src = "let r#type = r#match.unwrap(); trailing";
        let l = lex(src);
        assert!(l.tokens.iter().any(|t| t.is_ident("type")));
        assert!(l.tokens.iter().any(|t| t.is_ident("match")));
        assert!(l.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert!(l.tokens.iter().any(|t| t.is_ident("trailing")));
        // The `.unwrap(` shape survives for the panic_freedom detector.
        let pos = l.tokens.iter().position(|t| t.is_ident("unwrap")).unwrap();
        assert!(l.tokens[pos - 1].is_punct('.'));
        assert!(l.tokens[pos + 1].is_punct('('));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        // Raw byte strings with hash delimiters hide their contents.
        let src = "let b = br##\"not code .unwrap()\"##; tail";
        assert_eq!(idents(src), vec!["let", "b", "tail"]);
        // Byte char literal is one literal token, not ident + char.
        let l = lex("let c = b'x'; d");
        assert_eq!(idents("let c = b'x'; d"), vec!["let", "c", "d"]);
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokKind::Literal).count(),
            1
        );
        // Escaped byte char.
        assert_eq!(idents(r"let c = b'\n'; d"), vec!["let", "c", "d"]);
    }

    #[test]
    fn deeply_nested_block_comments() {
        let l = lex("/* a /* b /* c */ b */ a */ code()");
        assert_eq!(l.comments.len(), 1);
        assert!(l.tokens.iter().any(|t| t.is_ident("code")));
        // Partial markers inside the comment do not unbalance it.
        let l = lex("/* star * slash / ok */ more()");
        assert!(l.tokens.iter().any(|t| t.is_ident("more")));
    }

    #[test]
    fn lifetime_vs_char_literal_ambiguity() {
        // A lifetime immediately followed by a char literal.
        let l = lex("fn f<'a>(x: &'a u8) { g('x') }");
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "a"));
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokKind::Literal).count(),
            1
        );
        // `'_` anonymous lifetime and `'_'` char literal.
        let l = lex("let x: &'_ u8 = f('_');");
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "_"));
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokKind::Literal).count(),
            1
        );
        // Escaped quote char `'\''`.
        assert_eq!(idents(r"let q = '\''; d"), vec!["let", "q", "d"]);
    }

    #[test]
    fn unterminated_literals_do_not_panic() {
        let _ = lex("let s = \"never closed");
        let _ = lex("/* never closed");
        let _ = lex("let r = r#\"never closed");
        let _ = lex("'");
    }
}
