//! The incremental analysis cache: per-file facts keyed by content hash.
//!
//! Extraction ([`crate::semantic::file_facts`]) is the expensive half of
//! the pipeline and depends only on one file's text, so its result is
//! cached under the file's FNV-1a-64 hash. On a warm run, unchanged files
//! deserialize their facts instead of re-lexing; the interprocedural link
//! stage always re-runs (it is cheap and depends on *all* files).
//!
//! The format is a line-oriented, tab-separated text file with its own
//! schema tag — no serde, same zero-dependency rule as the rest of the
//! crate. Robustness policy: *any* malformed line discards the entire
//! cache. A stale or truncated cache must never change analysis results;
//! CI enforces this by comparing cold and warm runs byte-for-byte.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use crate::rules::{Rule, Violation};
use crate::semantic::{Call, CallKind, FileFacts, FnFact, SiteFact};

/// Schema tag on the cache's first line; bump on any layout change.
pub const CACHE_SCHEMA: &str = "fpb-analyze-cache/v1";

/// Hit/miss counters for one run, surfaced by the CLI.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Files whose facts were reused.
    pub hits: usize,
    /// Files re-analyzed (changed, new, or cache absent).
    pub misses: usize,
}

/// Serializes all facts to `path`, creating parent directories.
///
/// # Errors
///
/// Propagates filesystem errors; a failed save is reported, not fatal.
pub fn save(path: &Path, facts: &[FileFacts]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut s = String::with_capacity(64 * 1024);
    s.push_str(CACHE_SCHEMA);
    s.push('\n');
    for f in facts {
        s.push_str(&format!(
            "F\t{}\t{}\t{:016x}\t{}{}{}{}\n",
            esc(&f.rel_path),
            esc(&f.crate_key),
            f.hash,
            u8::from(f.has_unsafe),
            u8::from(f.is_crate_root),
            u8::from(f.root_has_forbid),
            u8::from(f.root_allows_forbid),
        ));
        for v in &f.violations {
            s.push_str(&format!(
                "V\t{}\t{}\t{}\t{}\n",
                v.rule.name(),
                v.line,
                esc(&v.file),
                esc(&v.message)
            ));
        }
        for func in &f.fns {
            s.push_str(&format!(
                "N\t{}\t{}\t{}\t{}\t{}\n",
                esc(&func.name),
                func.self_ty.as_deref().map(esc).unwrap_or_else(|| "-".into()),
                func.line,
                u8::from(func.has_self),
                u8::from(func.is_test),
            ));
            for c in &func.calls {
                let kind = match &c.kind {
                    CallKind::Free => "F".to_string(),
                    CallKind::Method => "M".to_string(),
                    CallKind::Typed(ty) => format!("T:{}", esc(ty)),
                };
                s.push_str(&format!("C\t{}\t{}\t{}\n", esc(&c.name), kind, c.line));
            }
            for p in &func.panic_sites {
                s.push_str(&format!("P\t{}\t{}\n", p.line, esc(&p.what)));
            }
            for d in &func.nondet_sources {
                s.push_str(&format!("D\t{}\t{}\n", d.line, esc(&d.what)));
            }
        }
    }
    std::fs::write(path, s)
}

/// Loads a cache file into a rel-path-keyed map. Returns `None` — treat
/// as a fully cold cache — when the file is absent, has a different
/// schema tag, or contains any malformed record.
pub fn load(path: &Path) -> Option<BTreeMap<String, FileFacts>> {
    let text = std::fs::read_to_string(path).ok()?;
    parse(&text)
}

fn parse(text: &str) -> Option<BTreeMap<String, FileFacts>> {
    let mut lines = text.lines();
    if lines.next()? != CACHE_SCHEMA {
        return None;
    }
    let mut out: BTreeMap<String, FileFacts> = BTreeMap::new();
    let mut cur: Option<FileFacts> = None;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        match fields.first().copied()? {
            "F" => {
                if let Some(done) = cur.take() {
                    out.insert(done.rel_path.clone(), done);
                }
                let [_, rel, key, hash, flags] = fields.as_slice() else {
                    return None;
                };
                let flags = flags.as_bytes();
                if flags.len() != 4 || flags.iter().any(|b| !matches!(b, b'0' | b'1')) {
                    return None;
                }
                cur = Some(FileFacts {
                    rel_path: unesc(rel)?,
                    crate_key: unesc(key)?,
                    hash: u64::from_str_radix(hash, 16).ok()?,
                    has_unsafe: flags[0] == b'1',
                    is_crate_root: flags[1] == b'1',
                    root_has_forbid: flags[2] == b'1',
                    root_allows_forbid: flags[3] == b'1',
                    violations: Vec::new(),
                    fns: Vec::new(),
                });
            }
            "V" => {
                let [_, rule, vline, file, message] = fields.as_slice() else {
                    return None;
                };
                cur.as_mut()?.violations.push(Violation {
                    rule: Rule::from_name(rule)?,
                    file: unesc(file)?,
                    line: vline.parse().ok()?,
                    message: unesc(message)?,
                });
            }
            "N" => {
                let [_, name, self_ty, fline, has_self, is_test] = fields.as_slice() else {
                    return None;
                };
                cur.as_mut()?.fns.push(FnFact {
                    name: unesc(name)?,
                    self_ty: if *self_ty == "-" { None } else { Some(unesc(self_ty)?) },
                    line: fline.parse().ok()?,
                    has_self: parse_bit(has_self)?,
                    is_test: parse_bit(is_test)?,
                    calls: Vec::new(),
                    panic_sites: Vec::new(),
                    nondet_sources: Vec::new(),
                });
            }
            "C" => {
                let [_, name, kind, cline] = fields.as_slice() else {
                    return None;
                };
                let kind = match *kind {
                    "F" => CallKind::Free,
                    "M" => CallKind::Method,
                    t => CallKind::Typed(unesc(t.strip_prefix("T:")?)?),
                };
                cur.as_mut()?.fns.last_mut()?.calls.push(Call {
                    name: unesc(name)?,
                    kind,
                    line: cline.parse().ok()?,
                });
            }
            "P" | "D" => {
                let [tag, sline, what] = fields.as_slice() else {
                    return None;
                };
                let site = SiteFact {
                    line: sline.parse().ok()?,
                    what: unesc(what)?,
                };
                let f = cur.as_mut()?.fns.last_mut()?;
                if *tag == "P" {
                    f.panic_sites.push(site);
                } else {
                    f.nondet_sources.push(site);
                }
            }
            _ => return None,
        }
    }
    if let Some(done) = cur.take() {
        out.insert(done.rel_path.clone(), done);
    }
    Some(out)
}

fn parse_bit(s: &str) -> Option<bool> {
    match s {
        "0" => Some(false),
        "1" => Some(true),
        _ => None,
    }
}

/// Escapes tabs, newlines, and backslashes so a field never breaks the
/// line/tab framing.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            't' => out.push('\t'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantic::file_facts;

    fn sample() -> Vec<FileFacts> {
        vec![
            file_facts(
                "crates/sim/src/a.rs",
                "sim",
                "impl System { pub fn run(&mut self) { helper(); x.unwrap() } }",
            ),
            file_facts(
                "crates/core/src/lib.rs",
                "core",
                "#![forbid(unsafe_code)]\nfn helper() { let t = Instant::now(); }",
            ),
        ]
    }

    #[test]
    fn roundtrip_preserves_facts_exactly() {
        let facts = sample();
        let dir = std::env::temp_dir().join("fpb-cache-test-roundtrip");
        let path = dir.join("cache.v1");
        save(&path, &facts).expect("save");
        let loaded = load(&path).expect("load");
        assert_eq!(loaded.len(), 2);
        for f in &facts {
            assert_eq!(loaded.get(&f.rel_path), Some(f), "{}", f.rel_path);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn escaped_fields_survive() {
        let mut f = file_facts("a.rs", "sim", "fn f() {}");
        f.violations.push(Violation {
            rule: Rule::PanicFreedom,
            file: "a.rs".into(),
            line: 1,
            message: "tab\there\nand \\slash".into(),
        });
        let dir = std::env::temp_dir().join("fpb-cache-test-escape");
        let path = dir.join("cache.v1");
        save(&path, &[f.clone()]).expect("save");
        let loaded = load(&path).expect("load");
        assert_eq!(loaded.get("a.rs"), Some(&f));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_or_mismatched_cache_is_discarded_whole() {
        assert_eq!(parse("wrong-schema\n"), None);
        assert_eq!(parse(&format!("{CACHE_SCHEMA}\nX\tbogus\n")), None);
        assert_eq!(
            parse(&format!("{CACHE_SCHEMA}\nF\ta.rs\tsim\tnothex\t0000\n")),
            None
        );
        // A valid file followed by a truncated record: all gone.
        assert_eq!(
            parse(&format!(
                "{CACHE_SCHEMA}\nF\ta.rs\tsim\t{:016x}\t0000\nV\tpanic_freedom\n",
                0u64
            )),
            None
        );
        // Orphan records (no preceding F) are malformed too.
        assert_eq!(
            parse(&format!("{CACHE_SCHEMA}\nP\t3\twhat\n")),
            None
        );
    }

    #[test]
    fn empty_cache_parses_to_empty_map() {
        let m = parse(&format!("{CACHE_SCHEMA}\n")).expect("schema-only cache");
        assert!(m.is_empty());
    }
}
