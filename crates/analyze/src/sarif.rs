//! SARIF v2.1.0 output, so editors and code-scanning UIs can ingest
//! `fpb lint` findings without a custom adapter.
//!
//! The emitted document is the minimal valid subset: one run, a tool
//! driver carrying the full rule catalog (id + short description), and
//! one result per violation with a physical location. Violations within
//! the checked-in baseline are reported at `"warning"` level (known
//! debt); violations above it are `"error"`.

use crate::baseline::RatchetReport;
use crate::report::json_string;
use crate::rules::Rule;

/// The SARIF schema/version this writer targets.
pub const SARIF_VERSION: &str = "2.1.0";

/// Renders the ratchet verdict as a SARIF v2.1.0 document.
pub fn render_sarif(report: &RatchetReport) -> String {
    let mut s = String::with_capacity(4096);
    s.push_str("{\n");
    s.push_str(
        "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/\
         Schemata/sarif-schema-2.1.0.json\",\n",
    );
    s.push_str(&format!("  \"version\": {},\n", json_string(SARIF_VERSION)));
    s.push_str("  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n");
    s.push_str("          \"name\": \"fpb-lint\",\n");
    s.push_str("          \"informationUri\": \"https://example.invalid/fpb\",\n");
    s.push_str("          \"rules\": [\n");
    for (i, rule) in Rule::ALL.iter().enumerate() {
        s.push_str(&format!(
            "            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}}}{}\n",
            json_string(rule.name()),
            json_string(rule.rationale()),
            if i + 1 < Rule::ALL.len() { "," } else { "" }
        ));
    }
    s.push_str("          ]\n        }\n      },\n");
    s.push_str("      \"results\": [\n");
    let mut results: Vec<String> = Vec::new();
    for o in &report.outcomes {
        for (k, v) in o.violations.iter().enumerate() {
            // The first `allowed` findings of a rule are baselined debt;
            // anything beyond regresses the ratchet.
            let level = if (k as u64) < o.allowed { "warning" } else { "error" };
            results.push(format!(
                "        {{\"ruleId\": {}, \"level\": {}, \"message\": {{\"text\": {}}}, \
                 \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": \
                 {{\"uri\": {}}}, \"region\": {{\"startLine\": {}}}}}}}]}}",
                json_string(v.rule.name()),
                json_string(level),
                json_string(&v.message),
                json_string(&v.file.replace('\\', "/")),
                v.line
            ));
        }
    }
    s.push_str(&results.join(",\n"));
    if !results.is_empty() {
        s.push('\n');
    }
    s.push_str("      ]\n    }\n  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::{check_ratchet, Baseline};
    use crate::rules::Violation;

    fn report_with(count: usize, allowed: u64) -> RatchetReport {
        let vs: Vec<Violation> = (0..count)
            .map(|i| Violation {
                rule: Rule::PanicFreedom,
                file: "crates/core/src/manager.rs".into(),
                line: i as u32 + 10,
                message: "`panic!` in non-test code".into(),
            })
            .collect();
        let mut counts = std::collections::BTreeMap::new();
        counts.insert("panic_freedom".to_string(), allowed);
        check_ratchet(&vs, &Baseline::from_counts(counts))
    }

    #[test]
    fn sarif_has_schema_rules_and_results() {
        let doc = render_sarif(&report_with(2, 1));
        assert!(doc.contains("\"version\": \"2.1.0\""));
        assert!(doc.contains("sarif-schema-2.1.0.json"));
        assert!(doc.contains("\"name\": \"fpb-lint\""));
        for rule in Rule::ALL {
            assert!(doc.contains(&format!("\"id\": \"{}\"", rule.name())), "{rule}");
        }
        assert!(doc.contains("\"startLine\": 10"));
        assert!(doc.contains("\"startLine\": 11"));
        // One baselined warning, one over-baseline error.
        assert!(doc.contains("\"level\": \"warning\""));
        assert!(doc.contains("\"level\": \"error\""));
    }

    #[test]
    fn sarif_is_brace_balanced_even_when_empty() {
        for doc in [render_sarif(&report_with(0, 0)), render_sarif(&report_with(3, 3))] {
            assert_eq!(doc.matches('{').count(), doc.matches('}').count());
            assert_eq!(doc.matches('[').count(), doc.matches(']').count());
        }
    }
}
