//! An intra-procedural CFG *sketch* for exit-path analysis.
//!
//! This is not a full control-flow graph: it recovers exactly the shape
//! the `token_leak` rule needs — the statement list of a function body
//! with `if`/`else` chains, `match` arms, and loops as nested blocks,
//! plus `return`/`?` exit events — and nothing more. Patterns, guards,
//! and expressions stay opaque token ranges. Closure bodies are swallowed
//! into their statement, so a `return` inside a closure is (correctly)
//! not a function exit.
//!
//! The leak analysis on top is a *must-consume* walk: starting after an
//! acquisition, every path to a function exit (early `return`, `?`
//! propagation, or scope end) must pass a consuming use of the bound
//! variable. A branch consumes only if **all** of its arms consume or
//! exit; a loop body's consumption is trusted (zero-iteration paths are a
//! deliberate false-negative — the polarity that avoids false positives).
//! `break`/`continue` are ignored for the same reason.

use crate::lexer::{TokKind, Token};

/// One statement in the CFG sketch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// A straight-line statement: token range `[start, end)`.
    Plain(usize, usize),
    /// An unconditional nested block (`{ ... }` or `unsafe { ... }`).
    Sub(Vec<Stmt>),
    /// An `if`/`else if`/`else` chain, a `match`, or a `let-else` arm.
    /// `exhaustive` is true when a fall-through without entering any arm
    /// is impossible (an `else` exists, or it's a `match`).
    Branch {
        /// Arms, each its own statement list.
        arms: Vec<Vec<Stmt>>,
        /// Whether every path necessarily enters some arm.
        exhaustive: bool,
    },
    /// A `loop`/`while`/`for` body.
    Loop(Vec<Stmt>),
}

/// Parses the token range strictly inside a body's braces
/// (`open + 1 .. close`) into a statement list.
pub fn parse_block(toks: &[Token], start: usize, end: usize) -> Vec<Stmt> {
    let mut out = Vec::new();
    let mut i = start;
    while i < end {
        let t = &toks[i];
        match &t.kind {
            TokKind::Punct(';') => {
                i += 1;
            }
            TokKind::Punct('{') => {
                let close = match_group(toks, i, end, '{', '}');
                out.push(Stmt::Sub(parse_block(toks, i + 1, close)));
                i = close + 1;
            }
            TokKind::Ident if t.text == "unsafe" && next_is(toks, i + 1, end, '{') => {
                let open = i + 1;
                let close = match_group(toks, open, end, '{', '}');
                out.push(Stmt::Sub(parse_block(toks, open + 1, close)));
                i = close + 1;
            }
            TokKind::Ident if t.text == "if" => {
                i = parse_if_chain(toks, i, end, &mut out);
            }
            TokKind::Ident if t.text == "match" => {
                let Some(open) = find_body_open(toks, i + 1, end) else {
                    out.push(Stmt::Plain(i, end));
                    break;
                };
                // The scrutinee is evaluated on every path into the
                // match — surface it as a Plain so consumption and exit
                // scans see it.
                out.push(Stmt::Plain(i, open));
                let close = match_group(toks, open, end, '{', '}');
                let arms = split_match_arms(toks, open, close)
                    .into_iter()
                    .map(|(_, body)| body)
                    .collect();
                out.push(Stmt::Branch {
                    arms,
                    exhaustive: true,
                });
                i = close + 1;
            }
            TokKind::Ident if matches!(t.text.as_str(), "loop" | "while" | "for") => {
                let Some(open) = find_body_open(toks, i + 1, end) else {
                    out.push(Stmt::Plain(i, end));
                    break;
                };
                // Loop headers are evaluated at least once.
                out.push(Stmt::Plain(i, open));
                let close = match_group(toks, open, end, '{', '}');
                out.push(Stmt::Loop(parse_block(toks, open + 1, close)));
                i = close + 1;
            }
            _ => {
                let (stmt, next) = parse_plain(toks, i, end, &mut out);
                if let Some(s) = stmt {
                    out.push(s);
                }
                i = next;
            }
        }
    }
    out
}

/// True when token `i` (within `end`) is the punctuation `c`.
fn next_is(toks: &[Token], i: usize, end: usize, c: char) -> bool {
    i < end && toks[i].is_punct(c)
}

/// Index of the token closing the group opened at `open` (which must be
/// the `op` character), scanning no further than `end`.
pub(crate) fn match_group(toks: &[Token], open: usize, end: usize, op: char, cl: char) -> usize {
    let mut nest = 0i32;
    let mut i = open;
    while i < end {
        match &toks[i].kind {
            TokKind::Punct(c) if *c == op => nest += 1,
            TokKind::Punct(c) if *c == cl => {
                nest -= 1;
                if nest == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    end.saturating_sub(1)
}

/// Finds the `{` opening a control-flow body, starting after the keyword.
/// Rust forbids naked struct literals in `if`/`while`/`for` headers, so
/// the first `{` outside parens/brackets opens the body.
pub(crate) fn find_body_open(toks: &[Token], mut i: usize, end: usize) -> Option<usize> {
    let mut nest = 0i32;
    while i < end {
        match &toks[i].kind {
            TokKind::Punct('(') | TokKind::Punct('[') => nest += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => nest -= 1,
            TokKind::Punct('{') if nest == 0 => return Some(i),
            _ => {}
        }
        i += 1;
    }
    None
}

/// Parses an `if … {…} else if … {…} else {…}` chain starting at the
/// `if` keyword, pushing onto `out`. Returns the index past the chain.
///
/// The first condition is evaluated on every path and is emitted as a
/// sibling Plain before the Branch; each `else if` condition is only
/// evaluated on paths that reach its arm, so it is prepended *inside*
/// that arm.
fn parse_if_chain(toks: &[Token], mut i: usize, end: usize, out: &mut Vec<Stmt>) -> usize {
    let mut arms: Vec<Vec<Stmt>> = Vec::new();
    let mut exhaustive = false;
    let mut first = true;
    loop {
        // `i` sits on `if`; find the body.
        let Some(open) = find_body_open(toks, i + 1, end) else {
            out.push(Stmt::Branch { arms, exhaustive });
            return end;
        };
        let cond = Stmt::Plain(i, open);
        let close = match_group(toks, open, end, '{', '}');
        let mut arm = parse_block(toks, open + 1, close);
        if first {
            out.push(cond);
            first = false;
        } else {
            arm.insert(0, cond);
        }
        arms.push(arm);
        i = close + 1;
        // `else if` continues the chain; `else {` terminates it.
        if i < end && toks[i].is_ident("else") {
            if i + 1 < end && toks[i + 1].is_ident("if") {
                i += 1;
                continue;
            }
            if next_is(toks, i + 1, end, '{') {
                let open = i + 1;
                let close = match_group(toks, open, end, '{', '}');
                arms.push(parse_block(toks, open + 1, close));
                exhaustive = true;
                i = close + 1;
            }
        }
        out.push(Stmt::Branch { arms, exhaustive });
        return i;
    }
}

/// Splits a match body (braces at `open`/`close`) into arms, returning
/// each arm's pattern token range `[start, arrow)` and its parsed body.
pub(crate) fn split_match_arms(
    toks: &[Token],
    open: usize,
    close: usize,
) -> Vec<((usize, usize), Vec<Stmt>)> {
    let mut arms = Vec::new();
    let mut j = open + 1;
    while j < close {
        // Skip the pattern (and guard) to its `=>`. Patterns may contain
        // `Foo { .. }` braces, so all three nest kinds count.
        let mut nest = 0i32;
        let mut arrow = None;
        let mut k = j;
        while k < close {
            match &toks[k].kind {
                TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => nest += 1,
                TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => nest -= 1,
                TokKind::Punct('=') if nest == 0 && next_is(toks, k + 1, close, '>') => {
                    arrow = Some(k);
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        let Some(arrow) = arrow else { break };
        let pattern = (j, arrow);
        let body_start = arrow + 2;
        if next_is(toks, body_start, close, '{') {
            let bclose = match_group(toks, body_start, close, '{', '}');
            arms.push((pattern, parse_block(toks, body_start + 1, bclose)));
            j = bclose + 1;
            if next_is(toks, j, close, ',') {
                j += 1;
            }
        } else {
            // Expression arm: runs to the `,` at nest 0, or the match end.
            let mut nest = 0i32;
            let mut k = body_start;
            while k < close {
                match &toks[k].kind {
                    TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => nest += 1,
                    TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => nest -= 1,
                    TokKind::Punct(',') if nest == 0 => break,
                    _ => {}
                }
                k += 1;
            }
            arms.push((pattern, vec![Stmt::Plain(body_start, k)]));
            j = k + 1;
        }
    }
    arms
}

/// Parses a plain statement starting at `i`. Handles the `let … else {`
/// split: the diverging else-block is pushed onto `out` as a
/// non-exhaustive Branch *after* the binding's Plain part. Returns
/// (the Plain statement, index past the statement).
fn parse_plain(
    toks: &[Token],
    i: usize,
    end: usize,
    out: &mut Vec<Stmt>,
) -> (Option<Stmt>, usize) {
    let is_let = toks[i].is_ident("let");
    let mut nest = 0i32;
    let mut saw_control = false;
    let mut j = i;
    while j < end {
        match &toks[j].kind {
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => nest += 1,
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => nest -= 1,
            TokKind::Punct(';') if nest == 0 => {
                return (Some(Stmt::Plain(i, j)), j + 1);
            }
            TokKind::Ident
                if nest == 0
                    && matches!(toks[j].text.as_str(), "if" | "match" | "loop" | "while") =>
            {
                saw_control = true;
            }
            TokKind::Ident
                if is_let
                    && !saw_control
                    && nest == 0
                    && toks[j].text == "else"
                    && next_is(toks, j + 1, end, '{') =>
            {
                // `let PAT = init else { diverge };` — emit the binding
                // part, then the diverging arm as a one-armed branch.
                out.push(Stmt::Plain(i, j));
                let open = j + 1;
                let close = match_group(toks, open, end, '{', '}');
                let arm = parse_block(toks, open + 1, close);
                let mut k = close + 1;
                if next_is(toks, k, end, ';') {
                    k += 1;
                }
                return (
                    Some(Stmt::Branch {
                        arms: vec![arm],
                        exhaustive: false,
                    }),
                    k,
                );
            }
            _ => {}
        }
        j += 1;
    }
    (Some(Stmt::Plain(i, end)), end)
}

/// A leak found by the must-consume walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Leak {
    /// Line of the exit that loses the value.
    pub line: u32,
    /// What kind of exit: "early return", "`?` propagation", "end of scope".
    pub kind: &'static str,
}

/// How a statement list terminates, from the walk's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flow {
    /// Control continues past the list; `consumed` says whether every
    /// falling-through path consumed the value.
    FallsThrough { consumed: bool },
    /// Every path through the list exited the function.
    Exits,
}

/// Runs the must-consume walk for variable `var`, starting within
/// `stmts` at the first statement whose tokens begin at or after
/// `from_tok`. `scope_end_line` anchors the end-of-scope leak report.
pub fn find_leaks(
    toks: &[Token],
    stmts: &[Stmt],
    var: &str,
    from_tok: usize,
    scope_end_line: u32,
) -> Vec<Leak> {
    let mut leaks = Vec::new();
    let flow = walk(toks, stmts, var, from_tok, false, &mut leaks);
    if let Flow::FallsThrough { consumed: false } = flow {
        leaks.push(Leak {
            line: scope_end_line,
            kind: "end of scope",
        });
    }
    leaks
}

fn walk(
    toks: &[Token],
    stmts: &[Stmt],
    var: &str,
    from_tok: usize,
    consumed_in: bool,
    leaks: &mut Vec<Leak>,
) -> Flow {
    let mut consumed = consumed_in;
    for stmt in stmts {
        if stmt_end(stmt) <= from_tok {
            continue;
        }
        match stmt {
            Stmt::Plain(s, e) => {
                let (s, e) = (*s.max(&from_tok), *e);
                let consumes_here = consumes(toks, s, e, var);
                if !consumed && !consumes_here {
                    for (line, kind) in exits_in(toks, s, e) {
                        leaks.push(Leak { line, kind });
                    }
                }
                consumed |= consumes_here;
                if s < e && toks[s].is_ident("return") {
                    return Flow::Exits;
                }
            }
            Stmt::Sub(inner) => match walk(toks, inner, var, from_tok, consumed, leaks) {
                Flow::Exits => return Flow::Exits,
                Flow::FallsThrough { consumed: c } => consumed = c,
            },
            Stmt::Branch { arms, exhaustive } => {
                let mut all_safe = true;
                let mut all_exit = !arms.is_empty();
                for arm in arms {
                    match walk(toks, arm, var, from_tok, consumed, leaks) {
                        Flow::Exits => {}
                        Flow::FallsThrough { consumed: c } => {
                            all_exit = false;
                            all_safe &= c;
                        }
                    }
                }
                if *exhaustive && all_exit {
                    return Flow::Exits;
                }
                consumed = consumed || (*exhaustive && all_safe);
            }
            Stmt::Loop(body) => {
                // A loop body's consumption is trusted (see module docs);
                // exits inside the body are still checked per-path.
                if let Flow::FallsThrough { consumed: c } =
                    walk(toks, body, var, from_tok, consumed, leaks)
                {
                    consumed = c;
                }
            }
        }
    }
    Flow::FallsThrough { consumed }
}

/// Last token index covered by a statement (for skipping pre-acquisition
/// statements).
fn stmt_end(stmt: &Stmt) -> usize {
    match stmt {
        Stmt::Plain(_, e) => *e,
        Stmt::Sub(inner) | Stmt::Loop(inner) => inner.iter().map(stmt_end).max().unwrap_or(0),
        Stmt::Branch { arms, .. } => arms
            .iter()
            .flat_map(|a| a.iter().map(stmt_end))
            .max()
            .unwrap_or(0),
    }
}

/// True when `var` is consumed in `[s, e)`: an occurrence that is not a
/// method-receiver (`var.method(...)` observes, it does not consume) and
/// not an argument to `drop(...)` (which destroys the value without
/// returning its tokens).
pub fn consumes(toks: &[Token], s: usize, e: usize, var: &str) -> bool {
    for i in s..e {
        if toks[i].is_ident(var)
            && !toks.get(i + 1).is_some_and(|n| n.is_punct('.'))
            && !is_drop_arg(toks, s, i)
        {
            return true;
        }
    }
    false
}

/// True when the occurrence at `i` sits (possibly behind `&`) directly
/// inside a `drop(...)` call.
fn is_drop_arg(toks: &[Token], stmt_start: usize, i: usize) -> bool {
    let mut j = i;
    while j > stmt_start && toks[j - 1].is_punct('&') {
        j -= 1;
    }
    j >= 2 && toks[j - 1].is_punct('(') && toks[j - 2].is_ident("drop")
}

/// Function-exit events in a plain-statement range: `return` and `?` at
/// brace-nest zero (so closure bodies and block expressions swallowed
/// into the statement do not count).
fn exits_in(toks: &[Token], s: usize, e: usize) -> Vec<(u32, &'static str)> {
    let mut out = Vec::new();
    let mut brace = 0i32;
    for t in &toks[s..e] {
        match &t.kind {
            TokKind::Punct('{') => brace += 1,
            TokKind::Punct('}') => brace -= 1,
            TokKind::Ident if brace == 0 && t.text == "return" => {
                out.push((t.line, "early return"));
            }
            TokKind::Punct('?') if brace == 0 => {
                out.push((t.line, "`?` propagation"));
            }
            _ => {}
        }
    }
    out
}

/// Locates the statement list that lexically contains token `tok`,
/// returning the innermost block's statements. Used to root the leak
/// walk at the acquisition's own scope (a grant bound inside an `if` arm
/// dies at that arm's closing brace).
pub fn block_containing(stmts: &[Stmt], tok: usize) -> &[Stmt] {
    for stmt in stmts {
        match stmt {
            Stmt::Plain(s, e) => {
                if *s <= tok && tok < *e {
                    return stmts;
                }
            }
            Stmt::Sub(inner) | Stmt::Loop(inner) => {
                if span_contains(inner, tok) {
                    return block_containing(inner, tok);
                }
            }
            Stmt::Branch { arms, .. } => {
                for arm in arms {
                    if span_contains(arm, tok) {
                        return block_containing(arm, tok);
                    }
                }
            }
        }
    }
    stmts
}

fn span_contains(stmts: &[Stmt], tok: usize) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Plain(a, b) => *a <= tok && tok < *b,
        Stmt::Sub(inner) | Stmt::Loop(inner) => span_contains(inner, tok),
        Stmt::Branch { arms, .. } => arms.iter().any(|a| span_contains(a, tok)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    /// Parses `src` as a full fn body and runs the leak walk for `var`
    /// starting at token 0.
    fn leaks_for(src: &str, var: &str) -> Vec<&'static str> {
        let lexed = lex(src);
        let stmts = parse_block(&lexed.tokens, 0, lexed.tokens.len());
        find_leaks(&lexed.tokens, &stmts, var, 0, 99)
            .into_iter()
            .map(|l| l.kind)
            .collect()
    }

    #[test]
    fn straight_line_release_is_clean() {
        assert_eq!(leaks_for("work(); ledger.release(&g);", "g"), Vec::<&str>::new());
    }

    #[test]
    fn never_released_leaks_at_scope_end() {
        assert_eq!(leaks_for("work(); more();", "g"), vec!["end of scope"]);
    }

    #[test]
    fn early_return_before_release_leaks() {
        let src = "if bad { return Err(e); } ledger.release(&g);";
        assert_eq!(leaks_for(src, "g"), vec!["early return"]);
    }

    #[test]
    fn returning_the_value_is_consumption() {
        assert_eq!(leaks_for("if ok { return Some(g); } ledger.release(&g);", "g"), Vec::<&str>::new());
    }

    #[test]
    fn question_mark_between_acquire_and_release_leaks() {
        let src = "let x = fallible()?; ledger.release(&g);";
        assert_eq!(leaks_for(src, "g"), vec!["`?` propagation"]);
    }

    #[test]
    fn question_mark_in_consuming_stmt_is_safe() {
        // The call that takes `g` happens before its `?` can fire.
        assert_eq!(leaks_for("store(g)?; done();", "g"), Vec::<&str>::new());
    }

    #[test]
    fn both_branch_arms_consuming_covers_the_exit() {
        let src = "if a { ledger.release(&g); } else { pool.recycle(g); } return x;";
        assert_eq!(leaks_for(src, "g"), Vec::<&str>::new());
    }

    #[test]
    fn one_unconsumed_arm_leaks_at_scope_end() {
        let src = "if a { ledger.release(&g); } tail();";
        assert_eq!(leaks_for(src, "g"), vec!["end of scope"]);
    }

    #[test]
    fn match_arms_checked_individually() {
        let src = "match x { A => ledger.release(&g), B => { return Ok(()); } }";
        // Arm B returns without consuming: early-return leak; arm A
        // consumes, so no scope-end leak after an exhaustive match...
        // but the fall-through from arm A is consumed, B exited leaky.
        assert_eq!(leaks_for(src, "g"), vec!["early return"]);
    }

    #[test]
    fn receiver_position_is_not_consumption() {
        assert_eq!(leaks_for("let x = g.used_gcp();", "g"), vec!["end of scope"]);
    }

    #[test]
    fn drop_is_not_consumption() {
        assert_eq!(leaks_for("drop(g);", "g"), vec!["end of scope"]);
        assert_eq!(leaks_for("drop(&g);", "g"), vec!["end of scope"]);
    }

    #[test]
    fn closure_return_is_not_a_function_exit() {
        let src = "spawn(move || { return 1; }); ledger.release(&g);";
        assert_eq!(leaks_for(src, "g"), Vec::<&str>::new());
    }

    #[test]
    fn let_else_divergence_checks_prior_bindings() {
        // `g` is live when the let-else diverges without consuming it.
        let src = "let Some(x) = opt else { return; }; ledger.release(&g);";
        assert_eq!(leaks_for(src, "g"), vec!["early return"]);
    }

    #[test]
    fn loop_body_consumption_is_trusted() {
        let src = "while go { ledger.release(&g); } tail();";
        assert_eq!(leaks_for(src, "g"), Vec::<&str>::new());
    }

    #[test]
    fn if_expression_in_let_is_not_let_else() {
        let src = "let x = if c { 1 } else { 2 }; ledger.release(&g);";
        assert_eq!(leaks_for(src, "g"), Vec::<&str>::new());
    }
}
