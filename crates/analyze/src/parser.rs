//! Item-level parser over the lexer's token stream.
//!
//! The semantic rules need one structural fact the flat token stream
//! cannot give them: *which function a token belongs to*. This parser
//! recovers exactly that — `fn` items with their enclosing `impl` type,
//! parameter-list `self` detection, and the token range of each body —
//! and deliberately nothing more. No expressions, no types, no generics:
//! like the lexer, it prefers a slightly-wrong item sketch over refusing
//! to parse, because the rules built on top (call graph, reachability,
//! taint) are conservative over-approximations anyway.
//!
//! Nested functions become their own items; tokens inside a nested body
//! are attributed to the *innermost* enclosing `fn`. Closure bodies stay
//! attributed to the function that defines them — which is what the
//! interprocedural rules want, since a thread body or callback executes
//! on behalf of its spawner.

use crate::lexer::{Lexed, TokKind, Token};
use crate::rules::test_region_lines;

/// One parsed `fn` item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// The function's bare name (`run`, `try_grant_flat`).
    pub name: String,
    /// The enclosing `impl` type's head identifier (`System` for
    /// `impl<S: Scheme> System<S>`), or `None` for free functions.
    pub self_ty: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token-index range of the body, **inclusive of both braces**.
    /// `body.0` is the `{`, `body.1` the matching `}`. Functions without
    /// a body (trait method signatures) are not emitted at all.
    pub body: (usize, usize),
    /// Whether the parameter list contains a `self` receiver.
    pub has_self: bool,
    /// Whether the item lives in a test region (`#[cfg(test)]`/`#[test]`)
    /// or would be recognized as one by the lexical rules.
    pub is_test: bool,
}

/// Parses every `fn` item in a lexed file.
///
/// `impl` context is tracked through a brace-depth stack so methods of
/// nested or sequential impl blocks resolve to the right type;
/// `impl Trait for Type` attributes methods to `Type`.
pub fn parse_items(lexed: &Lexed) -> Vec<FnItem> {
    let toks = &lexed.tokens;
    let test_lines = test_region_lines(toks);
    let mut out = Vec::new();
    // Stack of (brace depth at which the impl body opened, type name).
    let mut impl_stack: Vec<(i32, String)> = Vec::new();
    let mut depth: i32 = 0;
    // A pending impl type waiting for its `{` to open.
    let mut pending_impl: Option<String> = None;
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        match &t.kind {
            TokKind::Punct('{') => {
                if let Some(ty) = pending_impl.take() {
                    impl_stack.push((depth, ty));
                }
                depth += 1;
            }
            TokKind::Punct('}') => {
                depth -= 1;
                if impl_stack.last().is_some_and(|(d, _)| *d == depth) {
                    impl_stack.pop();
                }
            }
            TokKind::Punct(';') => {
                // `impl Foo;` does not exist, but a parse hiccup must not
                // leak a pending impl onto an unrelated block.
                pending_impl = None;
            }
            TokKind::Ident => match t.text.as_str() {
                "impl" => {
                    if let Some((ty, next)) = parse_impl_head(toks, i + 1) {
                        pending_impl = Some(ty);
                        i = next;
                        continue;
                    }
                }
                "fn" => {
                    if let Some((item, next)) = parse_fn(toks, i, &impl_stack, &test_lines) {
                        // Recurse into the body for nested fns by simply
                        // continuing the walk *inside* it: the walk is
                        // linear, so nested items are found naturally. The
                        // outer item's body range already spans them; the
                        // innermost-wins attribution happens in
                        // `enclosing_fn` lookups.
                        out.push(item);
                        // Continue right after the signature (inside the
                        // body) so nested fns are parsed too. The body's
                        // `{` is skipped by the jump, so count it here or
                        // the impl context pops one `}` early.
                        depth += 1;
                        i = next;
                        continue;
                    }
                }
                _ => {}
            },
            _ => {}
        }
        i += 1;
    }
    out
}

/// Given token index of the first token after `impl`, extracts the impl
/// type's head identifier and the index of the token that ends the head
/// (the `{`, `where`, or whatever stopped the scan — not consumed).
///
/// Handles `impl<'a, S: Scheme> System<S>`, `impl Trait for Type`, and
/// `impl Type`. Returns `None` when no type name is found before `{`.
fn parse_impl_head(toks: &[Token], mut i: usize) -> Option<(String, usize)> {
    // Skip the generic parameter list `<...>` if present.
    if toks.get(i).is_some_and(|t| t.is_punct('<')) {
        i = skip_angle_group(toks, i);
    }
    let mut head: Option<String> = None;
    while let Some(t) = toks.get(i) {
        match &t.kind {
            TokKind::Ident if t.text == "for" => {
                // `impl Trait for Type`: the real subject follows.
                head = None;
                i += 1;
            }
            TokKind::Ident if t.text == "where" => break,
            TokKind::Ident => {
                // Take path segments; the head identifier is the last
                // segment before generics (`core::ledger::Ledger` → the
                // final ident wins on the next iteration).
                head = Some(t.text.clone());
                i += 1;
            }
            TokKind::Punct('<') => i = skip_angle_group(toks, i),
            TokKind::Punct('{') => break,
            TokKind::Punct(':') | TokKind::Punct('&') | TokKind::Punct('(')
            | TokKind::Punct(')') | TokKind::Punct('*') | TokKind::Punct(',')
            | TokKind::Punct('\'') => i += 1,
            TokKind::Lifetime => i += 1,
            _ => break,
        }
    }
    head.map(|h| (h, i))
}

/// Skips a balanced `<...>` group starting at `i` (which must be `<`).
/// Returns the index just past the matching `>`. Comparison operators
/// cannot appear here (impl headers and fn signatures only).
fn skip_angle_group(toks: &[Token], mut i: usize) -> usize {
    let mut nest = 0i32;
    while let Some(t) = toks.get(i) {
        match t.kind {
            TokKind::Punct('<') => nest += 1,
            TokKind::Punct('>') => {
                nest -= 1;
                if nest == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Parses one `fn` item starting at the `fn` keyword token. Returns the
/// item and the token index *inside* the body (just past its `{`) so the
/// caller's walk discovers nested items, or `None` for bodyless
/// signatures (trait declarations, extern blocks).
fn parse_fn(
    toks: &[Token],
    fn_idx: usize,
    impl_stack: &[(i32, String)],
    test_lines: &std::collections::BTreeSet<u32>,
) -> Option<(FnItem, usize)> {
    let name_tok = toks.get(fn_idx + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let mut i = fn_idx + 2;
    // Skip generics on the fn itself.
    if toks.get(i).is_some_and(|t| t.is_punct('<')) {
        i = skip_angle_group(toks, i);
    }
    // Parameter list.
    if !toks.get(i).is_some_and(|t| t.is_punct('(')) {
        return None;
    }
    let (params_end, has_self) = scan_params(toks, i);
    i = params_end;
    // Scan forward to the body `{` or a terminating `;` (signature only).
    // Return types and where clauses contain no braces; `->` and bounds
    // are skipped token-wise, angle groups as groups (so `Result<T, E>`
    // commas don't confuse anything — they couldn't anyway).
    loop {
        let t = toks.get(i)?;
        match t.kind {
            TokKind::Punct('{') => break,
            TokKind::Punct(';') => return None,
            TokKind::Punct('<') => {
                i = skip_angle_group(toks, i);
                continue;
            }
            _ => i += 1,
        }
    }
    let body_open = i;
    let body_close = match_brace(toks, body_open);
    let item = FnItem {
        name: name_tok.text.clone(),
        self_ty: impl_stack.last().map(|(_, ty)| ty.clone()),
        line: toks[fn_idx].line,
        body: (body_open, body_close),
        has_self,
        is_test: test_lines.contains(&toks[fn_idx].line),
    };
    Some((item, body_open + 1))
}

/// Scans a parameter list starting at its `(`. Returns (index past the
/// matching `)`, whether a top-level `self` receiver appears).
fn scan_params(toks: &[Token], open: usize) -> (usize, bool) {
    let mut nest = 0i32;
    let mut has_self = false;
    let mut i = open;
    while let Some(t) = toks.get(i) {
        match &t.kind {
            TokKind::Punct('(') | TokKind::Punct('[') => nest += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => {
                nest -= 1;
                if nest == 0 {
                    return (i + 1, has_self);
                }
            }
            TokKind::Ident if t.text == "self" && nest == 1 => has_self = true,
            _ => {}
        }
        i += 1;
    }
    (i, has_self)
}

/// Index of the `}` matching the `{` at `open` (or the last token when
/// unbalanced — truncated files must not panic the parser).
fn match_brace(toks: &[Token], open: usize) -> usize {
    let mut nest = 0i32;
    let mut i = open;
    while let Some(t) = toks.get(i) {
        match t.kind {
            TokKind::Punct('{') => nest += 1,
            TokKind::Punct('}') => {
                nest -= 1;
                if nest == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// Finds the innermost item whose body contains token index `tok` —
/// `items` must come from [`parse_items`] on the same file. Innermost =
/// the item with the narrowest containing body range.
pub fn enclosing_fn(items: &[FnItem], tok: usize) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (k, item) in items.iter().enumerate() {
        if item.body.0 < tok && tok < item.body.1 {
            let narrower = match best {
                None => true,
                Some(b) => {
                    let cur = items[b].body;
                    (item.body.1 - item.body.0) < (cur.1 - cur.0)
                }
            };
            if narrower {
                best = Some(k);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items(src: &str) -> Vec<FnItem> {
        parse_items(&lex(src))
    }

    #[test]
    fn free_and_method_items() {
        let src = "fn free(x: u8) -> u8 { x }\n\
                   impl<S: Scheme> System<S> {\n\
                       pub fn run(self) -> Metrics { self.go() }\n\
                       fn helper(&mut self, n: u64) {}\n\
                   }\n\
                   fn tail() {}\n";
        let it = items(src);
        let names: Vec<(&str, Option<&str>, bool)> = it
            .iter()
            .map(|f| (f.name.as_str(), f.self_ty.as_deref(), f.has_self))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free", None, false),
                ("run", Some("System"), true),
                ("helper", Some("System"), true),
                ("tail", None, false),
            ]
        );
    }

    #[test]
    fn impl_trait_for_type_uses_the_type() {
        let src = "impl Scheme for Fpb { fn on_admit(&self) {} }";
        let it = items(src);
        assert_eq!(it[0].self_ty.as_deref(), Some("Fpb"));
    }

    #[test]
    fn trait_signatures_without_bodies_are_skipped() {
        let src = "trait T { fn sig(&self); fn with_default(&self) { self.sig() } }";
        let it = items(src);
        assert_eq!(it.len(), 1);
        assert_eq!(it[0].name, "with_default");
    }

    #[test]
    fn nested_fns_are_separate_items_with_innermost_attribution() {
        let src = "fn outer() {\n    fn inner() { boom() }\n    inner()\n}";
        let it = items(src);
        assert_eq!(it.len(), 2);
        let lexed = lex(src);
        let boom = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("boom"))
            .unwrap();
        let owner = enclosing_fn(&it, boom).unwrap();
        assert_eq!(it[owner].name, "inner");
    }

    #[test]
    fn generics_and_where_clauses_do_not_derail() {
        let src = "fn g<T: Ord, const N: usize>(x: [T; N]) -> Vec<T> where T: Clone { vec![] }\n\
                   fn after() {}";
        let it = items(src);
        assert_eq!(it.len(), 2);
        assert_eq!(it[1].name, "after");
    }

    #[test]
    fn test_region_items_are_marked() {
        let src = "fn hot() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {}\n}";
        let it = items(src);
        assert!(!it[0].is_test);
        assert!(it[1].is_test, "fn t inside cfg(test) must be marked");
    }

    #[test]
    fn sequential_impl_blocks_do_not_bleed() {
        let src = "impl A { fn fa(&self) {} }\nimpl B { fn fb(&self) {} }\nfn free() {}";
        let it = items(src);
        assert_eq!(it[0].self_ty.as_deref(), Some("A"));
        assert_eq!(it[1].self_ty.as_deref(), Some("B"));
        assert_eq!(it[2].self_ty, None);
    }
}
