//! # fpb-analyze: project-specific static analysis for the FPB workspace
//!
//! A hand-rolled, zero-registry-dependency Rust source scanner enforcing
//! the invariants FPB's results depend on but the compiler cannot see:
//!
//! * **Determinism** — no wall-clock, environment reads, or randomized
//!   hash iteration in the simulation crates (`fpb-core`, `fpb-sim`,
//!   `fpb-pcm`), whose outputs feed the serial-vs-parallel bit-equality
//!   gate.
//! * **Panic-freedom** — no `unwrap`/`expect`/`panic!`-family in the
//!   engine/ledger/manager hot paths outside test code.
//! * **Power accounting** — no narrowing `as` casts or exact float
//!   equality on token/energy/cycle values.
//! * **Unsafe hygiene** — every `unsafe` carries a `// SAFETY:` comment,
//!   and crates with no `unsafe` lock that in with
//!   `#![forbid(unsafe_code)]`.
//!
//! Existing debt is allowlisted in a checked-in ratchet baseline
//! (`lint-baseline.toml`) whose per-rule counts may only decrease; new
//! violations fail with `file:line` diagnostics. See [`rules::Rule`] for
//! the catalog and DESIGN.md for the rationale of each rule.
//!
//! ## Quickstart
//!
//! ```
//! use fpb_analyze::{baseline::Baseline, baseline::check_ratchet, rules::scan_source};
//!
//! let src = "fn hot(x: Option<u8>) -> u8 { x.unwrap() }";
//! let violations = scan_source("crates/core/src/hot.rs", "core", src);
//! assert_eq!(violations.len(), 1);
//! let report = check_ratchet(&violations, &Baseline::empty());
//! assert!(!report.ok());
//! ```
//!
//! The CLI entry point is `fpb lint`; CI runs it as a blocking job with
//! `--format json` and uploads the report artifact.

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod baseline;
pub mod cache;
pub mod callgraph;
pub mod cfg;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod sarif;
pub mod semantic;
pub mod symbols;
pub mod walk;

use std::io;
use std::path::Path;

use rules::{Rule, Violation};

/// The result of scanning a workspace tree.
#[derive(Debug, Clone)]
pub struct ScanResult {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Every violation found, in (file, line) order.
    pub violations: Vec<Violation>,
    /// Cache hit/miss counters for this run (all misses when no cache
    /// path was given).
    pub cache: cache::CacheStats,
}

/// Scans every source file under `root` (see [`walk::collect_sources`]
/// for what is included) and applies the whole rule catalog: the lexical
/// rules, the per-crate [`Rule::MissingForbidUnsafe`] check, and the
/// semantic rules (token leaks, panic reachability, nondeterminism
/// taint) over the workspace call graph.
///
/// # Errors
///
/// Propagates I/O errors from traversal or file reads.
pub fn scan_root(root: &Path) -> io::Result<ScanResult> {
    scan_root_cached(root, None)
}

/// [`scan_root`] with an optional incremental cache: per-file facts are
/// reused when the file's content hash matches, and the cache file is
/// rewritten after the scan. Results are byte-identical with and without
/// a cache — CI enforces this by diffing cold and warm reports.
///
/// # Errors
///
/// Propagates I/O errors from traversal or file reads. Cache *read*
/// problems fall back to a cold scan; cache *write* failures are
/// silently dropped (the cache is an optimization, never a requirement).
pub fn scan_root_cached(root: &Path, cache_path: Option<&Path>) -> io::Result<ScanResult> {
    let sources = walk::collect_sources(root)?;
    let cached = cache_path.and_then(cache::load).unwrap_or_default();
    let mut stats = cache::CacheStats::default();
    let mut facts: Vec<semantic::FileFacts> = Vec::with_capacity(sources.len());
    for src_file in &sources {
        let text = std::fs::read_to_string(&src_file.abs_path)?;
        let hash = semantic::fnv1a64(text.as_bytes());
        match cached.get(&src_file.rel_path) {
            Some(hit) if hit.hash == hash && hit.crate_key == src_file.crate_key => {
                stats.hits += 1;
                facts.push(hit.clone());
            }
            _ => {
                stats.misses += 1;
                facts.push(semantic::file_facts(
                    &src_file.rel_path,
                    &src_file.crate_key,
                    &text,
                ));
            }
        }
    }

    let mut violations = semantic::analyze(&facts);
    violations.extend(missing_forbid_unsafe(&facts));
    violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));

    if let Some(path) = cache_path {
        // Best-effort: a read-only target directory must not fail lint.
        let _ = cache::save(path, &facts);
    }
    Ok(ScanResult {
        files_scanned: sources.len(),
        violations,
        cache: stats,
    })
}

/// The per-crate aggregate check: a crate with no `unsafe` anywhere
/// should lock that in at its root.
fn missing_forbid_unsafe(facts: &[semantic::FileFacts]) -> Vec<Violation> {
    let mut crates: std::collections::BTreeMap<&str, CrateUnsafeInfo> =
        std::collections::BTreeMap::new();
    for f in facts {
        let info = crates.entry(f.crate_key.as_str()).or_default();
        info.has_unsafe |= f.has_unsafe;
        if f.is_crate_root {
            info.root_file = Some(f.rel_path.clone());
            info.root_has_forbid = f.root_has_forbid;
            info.root_allows_rule = f.root_allows_forbid;
        }
    }
    let mut out = Vec::new();
    for (key, info) in &crates {
        if let Some(root_file) = &info.root_file {
            if !info.has_unsafe && !info.root_has_forbid && !info.root_allows_rule {
                out.push(Violation {
                    rule: Rule::MissingForbidUnsafe,
                    file: root_file.clone(),
                    line: 1,
                    message: format!(
                        "crate `{key}` contains no unsafe code but its root lacks \
                         #![forbid(unsafe_code)]"
                    ),
                });
            }
        }
    }
    out
}

#[derive(Debug, Default)]
struct CrateUnsafeInfo {
    has_unsafe: bool,
    root_file: Option<String>,
    root_has_forbid: bool,
    root_allows_rule: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::{check_ratchet, Baseline};

    /// The repo root, two levels above this crate's manifest.
    fn repo_root() -> std::path::PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root")
            .to_path_buf()
    }

    #[test]
    fn workspace_scan_matches_checked_in_baseline() {
        // The real gate: the workspace must be clean against the
        // checked-in ratchet. This is the same check `fpb lint` and CI
        // run, so a regression fails the unit suite too.
        let root = repo_root();
        let result = scan_root(&root).expect("scan workspace");
        assert!(result.files_scanned > 50, "suspiciously few files scanned");
        let text = std::fs::read_to_string(root.join("lint-baseline.toml"))
            .expect("lint-baseline.toml at repo root");
        let baseline = Baseline::parse(&text).expect("parse baseline");
        let report = check_ratchet(&result.violations, &baseline);
        assert!(
            report.ok(),
            "lint regressed:\n{}",
            report::render_text(&report, result.files_scanned)
        );
    }

    #[test]
    fn violations_are_sorted_and_stable() {
        let root = repo_root();
        let a = scan_root(&root).expect("scan");
        let b = scan_root(&root).expect("scan");
        assert_eq!(a.violations, b.violations, "scan must be deterministic");
        let mut sorted = a.violations.clone();
        sorted.sort_by(|x, y| (&x.file, x.line, x.rule).cmp(&(&y.file, y.line, y.rule)));
        assert_eq!(a.violations, sorted);
    }
}
