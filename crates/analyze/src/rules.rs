//! The lint rule catalog and the per-file scanning pass.
//!
//! Every rule guards an invariant the compiler cannot see but FPB's
//! results depend on:
//!
//! * [`Rule::PanicFreedom`] — the engine/ledger/manager hot paths must
//!   degrade gracefully (PR 1's contract), so `unwrap`/`expect`/`panic!`/
//!   `unreachable!`/`todo!`/`unimplemented!` are banned outside test code.
//! * [`Rule::Determinism`] — wall-clock (`Instant`, `SystemTime`) and
//!   environment reads (`std::env`) inside the simulation crates would
//!   break the serial-vs-parallel bit-equality gate.
//! * [`Rule::HashOrder`] — `HashMap`/`HashSet` iteration order is
//!   randomized per process; any use in metric or report paths risks
//!   nondeterministic output, so the simulation crates use `BTreeMap`/
//!   `BTreeSet` (or sorted vectors) instead.
//! * [`Rule::TruncatingCast`] — an `as u32`-style narrowing cast on a
//!   token/cycle/energy quantity silently loses power accounting.
//! * [`Rule::FloatEq`] — exact `==` against a float literal on accounting
//!   values is almost always a latent epsilon bug.
//! * [`Rule::UnsafeNoSafety`] — every `unsafe` must carry a
//!   `// SAFETY:` comment.
//! * [`Rule::SchemeIsolation`] — scheme policy knobs (write cancellation,
//!   pausing, truncation, PreSET, controller feedback) may only be
//!   mutated inside the scheme module; engine stages must consume them
//!   through the `Scheme` trait hooks.
//!
//! Intentional exceptions are annotated in source with a directive
//! comment: `fpb-lint: allow(rule_name)` suppresses the named rule(s) on
//! the directive's line and the next line; `fpb-lint: allow-file(rule_name)`
//! suppresses them for the whole file. Remaining debt lives in the
//! checked-in ratchet baseline instead.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{lex, Comment, TokKind, Token};

/// A lint rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `unwrap`/`expect`/`panic!`-family outside `#[cfg(test)]`.
    PanicFreedom,
    /// `Instant`/`SystemTime`/`std::env` in simulation crates.
    Determinism,
    /// `HashMap`/`HashSet` in simulation crates.
    HashOrder,
    /// Narrowing `as` cast on a power-accounting quantity.
    TruncatingCast,
    /// `==`/`!=` against a float literal.
    FloatEq,
    /// `unsafe` without an adjacent `// SAFETY:` comment.
    UnsafeNoSafety,
    /// A crate with no `unsafe` whose root lacks `#![forbid(unsafe_code)]`.
    MissingForbidUnsafe,
    /// Scheme policy field mutated outside the scheme module.
    SchemeIsolation,
    /// A power-token acquisition (`try_grant_*`, `take_*scratch`) not
    /// released, returned, or propagated on every exit path (semantic).
    TokenLeak,
    /// A panic site transitively reachable from `System::run`/`step`
    /// through the call graph (semantic).
    PanicReachability,
    /// A nondeterminism source (wall clock, env, hash iteration, thread
    /// IDs) transitively reachable from metrics/report emission (semantic).
    NondetTaint,
    /// `Ordering::Relaxed` on a cross-thread coordination atomic without
    /// an adjacent `// ORDER:` justification (semantic).
    AtomicOrdering,
}

impl Rule {
    /// Every rule, in reporting order.
    pub const ALL: [Rule; 12] = [
        Rule::PanicFreedom,
        Rule::Determinism,
        Rule::HashOrder,
        Rule::TruncatingCast,
        Rule::FloatEq,
        Rule::UnsafeNoSafety,
        Rule::MissingForbidUnsafe,
        Rule::SchemeIsolation,
        Rule::TokenLeak,
        Rule::PanicReachability,
        Rule::NondetTaint,
        Rule::AtomicOrdering,
    ];

    /// Stable machine-readable name (used in the baseline, the JSON
    /// report, and `fpb-lint:` directives).
    pub fn name(self) -> &'static str {
        match self {
            Rule::PanicFreedom => "panic_freedom",
            Rule::Determinism => "determinism",
            Rule::HashOrder => "hash_order",
            Rule::TruncatingCast => "truncating_cast",
            Rule::FloatEq => "float_eq",
            Rule::UnsafeNoSafety => "unsafe_no_safety",
            Rule::MissingForbidUnsafe => "missing_forbid_unsafe",
            Rule::SchemeIsolation => "scheme_isolation",
            Rule::TokenLeak => "token_leak",
            Rule::PanicReachability => "panic_reachability",
            Rule::NondetTaint => "nondet_taint",
            Rule::AtomicOrdering => "atomic_ordering",
        }
    }

    /// Parses a rule name (directive or baseline key).
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.name() == name)
    }

    /// One-line rationale, shown in diagnostics.
    pub fn rationale(self) -> &'static str {
        match self {
            Rule::PanicFreedom => "hot paths must degrade gracefully, not panic",
            Rule::Determinism => {
                "wall-clock/env reads break the serial-vs-parallel bit-equality gate"
            }
            Rule::HashOrder => "randomized hash iteration order can leak into metrics/reports",
            Rule::TruncatingCast => "narrowing cast silently loses power accounting",
            Rule::FloatEq => "exact float equality on accounting values is an epsilon bug",
            Rule::UnsafeNoSafety => "every unsafe block needs a `// SAFETY:` justification",
            Rule::MissingForbidUnsafe => {
                "crates without unsafe should lock that in with #![forbid(unsafe_code)]"
            }
            Rule::SchemeIsolation => {
                "scheme policy is composed in the scheme module; stages consume it via hooks"
            }
            Rule::TokenLeak => {
                "every granted power token must return to the ledger on every exit path"
            }
            Rule::PanicReachability => {
                "a panic reachable from System::run/step can abort a simulation mid-write"
            }
            Rule::NondetTaint => {
                "a nondeterminism source feeding metrics/report output breaks bit-equality gates"
            }
            Rule::AtomicOrdering => {
                "Relaxed on a coordination atomic needs an `// ORDER:` proof it cannot reorder"
            }
        }
    }

    /// Whether this rule applies to source in the given crate.
    ///
    /// `crate_key` is the directory name under `crates/` (`core`, `sim`,
    /// `pcm`, ...) or `fpb` for the workspace root package.
    pub fn applies_to(self, crate_key: &str) -> bool {
        match self {
            // The engine/ledger/manager and device-model hot paths.
            Rule::PanicFreedom | Rule::Determinism | Rule::HashOrder => {
                matches!(crate_key, "core" | "sim" | "pcm")
            }
            // Accounting quantities are defined in fpb-types and consumed
            // in the simulation crates.
            Rule::TruncatingCast | Rule::FloatEq => {
                matches!(crate_key, "core" | "sim" | "pcm" | "types")
            }
            Rule::UnsafeNoSafety | Rule::MissingForbidUnsafe => true,
            // The Scheme trait and its composable setup live in fpb-sim.
            Rule::SchemeIsolation => crate_key == "sim",
            // Grants are issued by fpb-core's ledger and consumed in the
            // simulation crates; panic/taint propagation follows the same
            // hot-path scope as their lexical siblings.
            Rule::TokenLeak | Rule::PanicReachability | Rule::NondetTaint => {
                matches!(crate_key, "core" | "sim" | "pcm")
            }
            // The cross-thread coordination atomics live in fpb-sim's
            // exec/supervise modules.
            Rule::AtomicOrdering => crate_key == "sim",
        }
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The violated rule.
    pub rule: Rule,
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description of the specific finding.
    pub message: String,
}

/// Identifiers whose presence on a line marks it as handling power,
/// energy, or time accounting (the [`Rule::TruncatingCast`] scope).
const DOMAIN_WORDS: [&str; 7] = [
    "token", "millis", "cycle", "energy", "budget", "cells", "watt",
];

/// Narrowing integer cast targets. Widening (`as u64`) and float casts
/// carry explicit rounding intent (`.floor()`, `.ceil()`) and are left to
/// review.
const NARROW_TARGETS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// Macros banned by [`Rule::PanicFreedom`] (asserts stay allowed: they
/// state contracts, and `debug_assert!` vanishes in release builds).
pub(crate) const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Scheme policy fields ([`Rule::SchemeIsolation`]): assigning to one of
/// these through a field access outside the scheme module bypasses the
/// `Scheme` trait composition.
const SCHEME_FIELDS: [&str; 6] = [
    "cancellation",
    "pausing",
    "truncation_ecc",
    "pre_write_read",
    "preset",
    "worst_case_hold",
];

/// Scans one file's source text.
///
/// * `file` — repo-relative path used in diagnostics.
/// * `crate_key` — which crate the file belongs to (see
///   [`Rule::applies_to`]).
///
/// Test code is exempt from every rule except [`Rule::UnsafeNoSafety`]:
/// regions under `#[cfg(test)]`/`#[test]`, and whole files under
/// `tests/`, `benches/`, `examples/`, or named `proptests.rs`.
pub fn scan_source(file: &str, crate_key: &str, src: &str) -> Vec<Violation> {
    scan_lexed(file, crate_key, &lex(src))
}

/// Token-stream form of [`scan_source`], for callers that already lexed
/// the file (the semantic fact extractor shares one lex per file).
pub(crate) fn scan_lexed(file: &str, crate_key: &str, lexed: &crate::lexer::Lexed) -> Vec<Violation> {
    let test_file = is_test_file(file);
    let scheme_module = is_scheme_module(file);
    let test_lines = test_region_lines(&lexed.tokens);
    let allow = Directives::parse(&lexed.comments);
    let domain_lines = domain_word_lines(&lexed.tokens);
    let safety_lines: BTreeSet<u32> = lexed
        .comments
        .iter()
        .filter(|c| c.text.contains("SAFETY:"))
        .flat_map(|c| c.start_line..=c.end_line)
        .collect();
    let order_lines: BTreeSet<u32> = lexed
        .comments
        .iter()
        .filter(|c| c.text.contains("ORDER:"))
        .flat_map(|c| c.start_line..=c.end_line)
        .collect();

    let mut out = Vec::new();
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        let in_test = test_file || test_lines.contains(&t.line);
        let emit = |rule: Rule, line: u32, message: String, out: &mut Vec<Violation>| {
            if rule.applies_to(crate_key) && !allow.allows(rule, line) {
                out.push(Violation {
                    rule,
                    file: file.to_string(),
                    line,
                    message,
                });
            }
        };
        if t.kind != TokKind::Ident {
            // Float equality: `== 0.5` / `0.5 ==` (and `!=`).
            if let TokKind::Punct(c) = t.kind {
                if (c == '=' || c == '!')
                    && !in_test
                    && is_eq_operator(toks, i)
                    && (is_float_num(toks, i.wrapping_sub(1)) || is_float_num(toks, i + 2))
                {
                    emit(
                        Rule::FloatEq,
                        t.line,
                        "exact equality against a float literal".to_string(),
                        &mut out,
                    );
                }
            }
            continue;
        }
        match t.text.as_str() {
            "unwrap" | "expect" if !in_test => {
                let is_method_call = i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('('));
                if is_method_call {
                    emit(
                        Rule::PanicFreedom,
                        t.line,
                        format!("`.{}()` can panic; use a typed error path", t.text),
                        &mut out,
                    );
                }
            }
            name if PANIC_MACROS.contains(&name)
                && !in_test
                && toks.get(i + 1).is_some_and(|n| n.is_punct('!')) =>
            {
                emit(
                    Rule::PanicFreedom,
                    t.line,
                    format!("`{name}!` in non-test code"),
                    &mut out,
                );
            }
            "Instant" | "SystemTime" if !in_test => {
                emit(
                    Rule::Determinism,
                    t.line,
                    format!("`{}` reads the wall clock", t.text),
                    &mut out,
                );
            }
            "env" if !in_test => {
                // `std::env` / `env::var(...)` — but not the compile-time
                // `env!(...)` macro.
                let path_use = i > 0
                    && toks[i - 1].is_punct(':')
                    && !toks.get(i + 1).is_some_and(|n| n.is_punct('!'));
                let call_use = toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
                    && toks.get(i + 3).is_some_and(|n| n.is_ident("var"));
                if path_use || call_use {
                    emit(
                        Rule::Determinism,
                        t.line,
                        "`std::env` read makes behavior depend on the environment".to_string(),
                        &mut out,
                    );
                }
            }
            "HashMap" | "HashSet" if !in_test => {
                emit(
                    Rule::HashOrder,
                    t.line,
                    format!("`{}` has randomized iteration order; use BTree or sort", t.text),
                    &mut out,
                );
            }
            "as" if !in_test => {
                if let Some(next) = toks.get(i + 1) {
                    if next.kind == TokKind::Ident
                        && NARROW_TARGETS.contains(&next.text.as_str())
                        && domain_lines.contains(&t.line)
                    {
                        emit(
                            Rule::TruncatingCast,
                            t.line,
                            format!("narrowing `as {}` on an accounting value", next.text),
                            &mut out,
                        );
                    }
                }
            }
            name if SCHEME_FIELDS.contains(&name)
                && !in_test
                && !scheme_module
                && is_field_assignment(toks, i) =>
            {
                emit(
                    Rule::SchemeIsolation,
                    t.line,
                    format!("scheme policy field `{name}` mutated outside the scheme module"),
                    &mut out,
                );
            }
            "Relaxed" if !in_test => {
                // `Ordering::Relaxed` on a coordination atomic: fine for
                // counters, but only with an adjacent `// ORDER:` comment
                // proving no cross-thread ordering depends on it.
                let qualified = i >= 2
                    && toks[i - 1].is_punct(':')
                    && toks[i - 2].is_punct(':')
                    && toks.get(i.wrapping_sub(3)).is_some_and(|t| t.is_ident("Ordering"));
                let documented = (t.line.saturating_sub(3)..=t.line)
                    .any(|l| order_lines.contains(&l));
                if qualified && !documented {
                    emit(
                        Rule::AtomicOrdering,
                        t.line,
                        "`Ordering::Relaxed` without an `// ORDER:` justification".to_string(),
                        &mut out,
                    );
                }
            }
            "unsafe" => {
                // Applies in test code too: unsafe is unsafe everywhere.
                let documented = (t.line.saturating_sub(3)..=t.line)
                    .any(|l| safety_lines.contains(&l));
                if !documented {
                    emit(
                        Rule::UnsafeNoSafety,
                        t.line,
                        "`unsafe` without a `// SAFETY:` comment".to_string(),
                        &mut out,
                    );
                }
            }
            _ => {}
        }
    }
    out
}

/// True if the file belongs to the scheme module (the one place allowed
/// to compose and mutate scheme policy).
fn is_scheme_module(file: &str) -> bool {
    let normalized = file.replace('\\', "/");
    normalized.contains("/scheme/") || normalized.ends_with("/scheme.rs")
}

/// True when identifier token `i` is the field of a plain or compound
/// assignment: preceded by `.`, followed by `=` (or `op=`) but not `==`.
fn is_field_assignment(toks: &[Token], i: usize) -> bool {
    if i == 0 || !toks[i - 1].is_punct('.') {
        return false;
    }
    let mut j = i + 1;
    // Compound assignment: one operator punct before the `=`.
    if toks
        .get(j)
        .is_some_and(|t| matches!(t.kind, TokKind::Punct(c) if "+-*/%&|^".contains(c)))
    {
        j += 1;
    }
    toks.get(j).is_some_and(|t| t.is_punct('='))
        && !toks.get(j + 1).is_some_and(|t| t.is_punct('='))
}

/// True if the whole file is test/bench/example code.
pub(crate) fn is_test_file(file: &str) -> bool {
    let normalized = file.replace('\\', "/");
    normalized.contains("/tests/")
        || normalized.contains("/benches/")
        || normalized.contains("/examples/")
        || normalized.starts_with("tests/")
        || normalized.starts_with("benches/")
        || normalized.starts_with("examples/")
        || normalized.ends_with("proptests.rs")
}

/// Returns true when token `i` starts a `==` or `!=` operator (two
/// adjacent `=`, or `!` followed by `=`, not part of `<=`, `>=`, `=>`,
/// or a compound assignment).
fn is_eq_operator(toks: &[Token], i: usize) -> bool {
    let Some(t) = toks.get(i) else { return false };
    let Some(n) = toks.get(i + 1) else { return false };
    match t.kind {
        TokKind::Punct('=') => {
            // `==`, not `<=`/`>=`/`+=`/... (previous punct would pair) and
            // not `===`-like runs (Rust has none).
            n.is_punct('=')
                && !toks
                    .get(i.wrapping_sub(1))
                    .is_some_and(|p| matches!(p.kind, TokKind::Punct(c) if "<>=+-*/%&|^!".contains(c)))
        }
        TokKind::Punct('!') => n.is_punct('='),
        _ => false,
    }
}

fn is_float_num(toks: &[Token], i: usize) -> bool {
    toks.get(i)
        .is_some_and(|t| matches!(t.kind, TokKind::Num { float: true }))
}

/// Lines whose tokens mention a power-accounting identifier.
fn domain_word_lines(toks: &[Token]) -> BTreeSet<u32> {
    toks.iter()
        .filter(|t| t.kind == TokKind::Ident)
        .filter(|t| {
            let lower = t.text.to_lowercase();
            DOMAIN_WORDS.iter().any(|w| lower.contains(w))
        })
        .map(|t| t.line)
        .collect()
}

/// Computes the set of source lines inside `#[cfg(test)]` / `#[test]`
/// items by tracking brace depth: a test attribute arms a pending flag
/// that latches onto the next `{` and stays set until its matching `}`.
pub(crate) fn test_region_lines(toks: &[Token]) -> BTreeSet<u32> {
    let mut lines = BTreeSet::new();
    let mut depth: i32 = 0;
    let mut pending = false;
    let mut test_until: Vec<i32> = Vec::new(); // stack of depths to pop at
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if !test_until.is_empty() {
            lines.insert(t.line);
        }
        match t.kind {
            TokKind::Punct('#') => {
                // `#[...]` or `#![...]`: scan the attribute's tokens.
                let mut j = i + 1;
                if toks.get(j).is_some_and(|t| t.is_punct('!')) {
                    j += 1;
                }
                if toks.get(j).is_some_and(|t| t.is_punct('[')) {
                    let mut nest = 0i32;
                    let mut is_test_attr = false;
                    let mut first_ident: Option<&str> = None;
                    let mut k = j;
                    while let Some(a) = toks.get(k) {
                        match a.kind {
                            TokKind::Punct('[') | TokKind::Punct('(') => nest += 1,
                            TokKind::Punct(']') | TokKind::Punct(')') => {
                                nest -= 1;
                                if nest == 0 {
                                    break;
                                }
                            }
                            TokKind::Ident => {
                                if first_ident.is_none() {
                                    first_ident = Some(a.text.as_str());
                                }
                                if a.text == "test" {
                                    is_test_attr = true;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    // `#[test]`, `#[cfg(test)]`, `#[cfg(any(test, ...))]`
                    // — but not e.g. `#[should_panic(expected = "test")]`.
                    if is_test_attr && matches!(first_ident, Some("cfg") | Some("test")) {
                        pending = true;
                    }
                    i = k + 1;
                    continue;
                }
            }
            TokKind::Punct('{') => {
                if pending {
                    test_until.push(depth);
                    pending = false;
                    lines.insert(t.line);
                }
                depth += 1;
            }
            TokKind::Punct('}') => {
                depth -= 1;
                if test_until.last() == Some(&depth) {
                    test_until.pop();
                }
            }
            TokKind::Punct(';') => {
                // A test attribute on a braceless item (`#[cfg(test)] mod
                // proptests;`) must not latch onto the next block.
                pending = false;
            }
            _ => {}
        }
        i += 1;
    }
    lines
}

/// Parsed `fpb-lint:` allow directives for one file.
#[derive(Debug, Default)]
pub(crate) struct Directives {
    /// Rules suppressed for the whole file.
    file_wide: BTreeSet<Rule>,
    /// Rule → lines on which it is suppressed.
    lines: BTreeMap<Rule, BTreeSet<u32>>,
}

impl Directives {
    pub(crate) fn parse(comments: &[Comment]) -> Self {
        let mut d = Directives::default();
        for c in comments {
            let Some(idx) = c.text.find("fpb-lint:") else {
                continue;
            };
            let rest = &c.text[idx + "fpb-lint:".len()..];
            let (file_wide, args) = if let Some(args) = extract_args(rest, "allow-file") {
                (true, args)
            } else if let Some(args) = extract_args(rest, "allow") {
                (false, args)
            } else {
                continue;
            };
            for name in args.split(',') {
                let Some(rule) = Rule::from_name(name.trim()) else {
                    continue;
                };
                if file_wide {
                    d.file_wide.insert(rule);
                } else {
                    // The directive covers its own line(s) and the next.
                    d.lines
                        .entry(rule)
                        .or_default()
                        .extend(c.start_line..=c.end_line + 1);
                }
            }
        }
        d
    }

    pub(crate) fn allows(&self, rule: Rule, line: u32) -> bool {
        self.file_wide.contains(&rule)
            || self.lines.get(&rule).is_some_and(|s| s.contains(&line))
    }
}

/// Extracts `args` from `verb(args)` at the start of `rest` (after
/// optional whitespace), or `None` if `rest` doesn't start with `verb(`.
fn extract_args<'a>(rest: &'a str, verb: &str) -> Option<&'a str> {
    let rest = rest.trim_start();
    let body = rest.strip_prefix(verb)?;
    let body = body.trim_start();
    let body = body.strip_prefix('(')?;
    // `allow` must not match `allow-file(`.
    body.split(')').next()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_found(file: &str, crate_key: &str, src: &str) -> Vec<(Rule, u32)> {
        scan_source(file, crate_key, src)
            .into_iter()
            .map(|v| (v.rule, v.line))
            .collect()
    }

    #[test]
    fn unwrap_flagged_only_as_method_call() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n";
        assert_eq!(
            rules_found("crates/core/src/x.rs", "core", src),
            vec![(Rule::PanicFreedom, 2)]
        );
        // `unwrap_or` and the bare word in a string are not calls.
        let src = "fn f() { x.unwrap_or(3); let s = \"unwrap()\"; }";
        assert!(rules_found("crates/core/src/x.rs", "core", src).is_empty());
    }

    #[test]
    fn panic_macros_flagged() {
        let src = "fn f() { panic!(\"boom\"); unreachable!() }";
        let found = rules_found("crates/sim/src/x.rs", "sim", src);
        assert_eq!(found.len(), 2);
        assert!(found.iter().all(|(r, _)| *r == Rule::PanicFreedom));
        // `should_panic` attribute or a fn named panic_free: not flagged.
        let src = "#[should_panic(expected = \"x\")] fn panic_free() {}";
        assert!(rules_found("crates/sim/src/x.rs", "sim", src).is_empty());
    }

    #[test]
    fn test_regions_are_exempt() {
        let src = "fn hot() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn t() { x.unwrap(); panic!(); }\n\
                   }\n";
        assert!(rules_found("crates/core/src/x.rs", "core", src).is_empty());
        // ... but the same code outside the module is flagged.
        let src2 = "fn hot() { x.unwrap(); }";
        assert_eq!(rules_found("crates/core/src/x.rs", "core", src2).len(), 1);
    }

    #[test]
    fn cfg_test_on_braceless_item_does_not_leak() {
        let src = "#[cfg(test)]\nmod proptests;\nfn hot() { x.unwrap(); }";
        assert_eq!(
            rules_found("crates/core/src/x.rs", "core", src),
            vec![(Rule::PanicFreedom, 3)]
        );
    }

    #[test]
    fn test_files_are_exempt() {
        let src = "fn t() { x.unwrap(); }";
        assert!(rules_found("crates/sim/tests/integ.rs", "sim", src).is_empty());
        assert!(rules_found("crates/sim/src/proptests.rs", "sim", src).is_empty());
        assert_eq!(rules_found("crates/sim/src/engine.rs", "sim", src).len(), 1);
    }

    #[test]
    fn determinism_rule_matches_clock_and_env() {
        let src = "use std::time::Instant;\nfn f() { let _ = std::env::var(\"X\"); }";
        let found = rules_found("crates/sim/src/x.rs", "sim", src);
        assert_eq!(found, vec![(Rule::Determinism, 1), (Rule::Determinism, 2)]);
        // The compile-time env! macro is fine, and out-of-scope crates are
        // not flagged.
        let src2 = "const V: &str = env!(\"CARGO_PKG_VERSION\");";
        assert!(rules_found("crates/sim/src/x.rs", "sim", src2).is_empty());
        assert!(rules_found("crates/bench/src/x.rs", "bench", src).is_empty());
    }

    #[test]
    fn hash_order_flagged_in_scope() {
        let src = "use std::collections::HashMap;\nstruct S { m: HashMap<u64, u64> }";
        assert_eq!(rules_found("crates/core/src/x.rs", "core", src).len(), 2);
        assert!(rules_found("crates/trace/src/x.rs", "trace", src).is_empty());
    }

    #[test]
    fn truncating_cast_needs_domain_word() {
        let src = "fn f(t: u64) -> u32 { t as u32 }";
        assert!(rules_found("crates/core/src/x.rs", "core", src).is_empty());
        let src = "fn f(tokens: u64) -> u32 { tokens as u32 }";
        assert_eq!(
            rules_found("crates/core/src/x.rs", "core", src),
            vec![(Rule::TruncatingCast, 1)]
        );
        // Widening is fine even on domain values.
        let src = "fn f(tokens: u32) -> u64 { tokens as u64 }";
        assert!(rules_found("crates/core/src/x.rs", "core", src).is_empty());
    }

    #[test]
    fn float_eq_matches_literal_comparisons() {
        let src = "fn f(x: f64) -> bool { x == 0.5 }";
        assert_eq!(
            rules_found("crates/types/src/x.rs", "types", src),
            vec![(Rule::FloatEq, 1)]
        );
        let src = "fn f(x: f64) -> bool { 0.5 != x }";
        assert_eq!(rules_found("crates/types/src/x.rs", "types", src).len(), 1);
        // Integer equality, `<=`, and `=>` arms stay clean.
        let src = "fn f(x: u64) -> bool { x == 5 || x <= 9 }";
        assert!(rules_found("crates/types/src/x.rs", "types", src).is_empty());
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let src = "fn f() { unsafe { danger() } }";
        assert_eq!(
            rules_found("crates/trace/src/x.rs", "trace", src),
            vec![(Rule::UnsafeNoSafety, 1)]
        );
        let src = "fn f() {\n    // SAFETY: justified\n    unsafe { danger() }\n}";
        assert!(rules_found("crates/trace/src/x.rs", "trace", src).is_empty());
        // Applies even in test files.
        let src = "fn t() { unsafe { danger() } }";
        assert_eq!(rules_found("crates/trace/tests/t.rs", "trace", src).len(), 1);
    }

    #[test]
    fn allow_directives_suppress() {
        let src = "// fpb-lint: allow(panic_freedom) — documented contract\n\
                   fn f() { x.unwrap(); }\n\
                   fn g() { y.unwrap(); }\n";
        assert_eq!(
            rules_found("crates/core/src/x.rs", "core", src),
            vec![(Rule::PanicFreedom, 3)],
            "directive covers its own and the next line only"
        );
        let src = "// fpb-lint: allow-file(hash_order)\n\
                   use std::collections::HashMap;\n\
                   fn f() { x.unwrap(); }\n";
        assert_eq!(
            rules_found("crates/core/src/x.rs", "core", src),
            vec![(Rule::PanicFreedom, 3)],
            "allow-file suppresses only the named rule"
        );
    }

    #[test]
    fn doc_comment_examples_are_not_code() {
        let src = "/// ```\n/// let x = y.unwrap();\n/// ```\nfn f() {}";
        assert!(rules_found("crates/core/src/x.rs", "core", src).is_empty());
    }
}
