//! Diagnostic rendering: human-readable text and the machine-readable
//! JSON report CI uploads as an artifact.

use crate::baseline::RatchetReport;
use crate::rules::Rule;

/// Schema tag of the JSON report.
pub const JSON_SCHEMA: &str = "fpb-lint/v1";

/// Renders the full ratchet verdict as text diagnostics.
///
/// Regressed rules list every violation as `file:line: rule: message` (so
/// editors and CI logs link straight to the source); clean and improved
/// rules get a one-line summary.
pub fn render_text(report: &RatchetReport, files_scanned: usize) -> String {
    let mut s = String::new();
    for o in &report.outcomes {
        if o.regressed() {
            s.push_str(&format!(
                "rule {} REGRESSED: {} violation(s), baseline allows {}\n",
                o.rule, o.count, o.allowed
            ));
            s.push_str(&format!("  rationale: {}\n", o.rule.rationale()));
            for v in &o.violations {
                s.push_str(&format!("  {}:{}: {}: {}\n", v.file, v.line, v.rule, v.message));
            }
        }
    }
    for o in report.improvements() {
        s.push_str(&format!(
            "rule {} improved: {} violation(s), baseline allows {} — run \
             `fpb lint --update-baseline` to ratchet down\n",
            o.rule, o.count, o.allowed
        ));
    }
    let (total, debt): (u64, u64) = report
        .outcomes
        .iter()
        .fold((0, 0), |(t, d), o| (t + o.count, d + o.count.min(o.allowed)));
    s.push_str(&format!(
        "fpb lint: {} file(s), {} violation(s) ({} allowlisted) — {}\n",
        files_scanned,
        total,
        debt,
        if report.ok() { "OK" } else { "FAILED" }
    ));
    s
}

/// Renders the machine-readable JSON report.
///
/// Layout:
///
/// ```json
/// {
///   "schema": "fpb-lint/v1",
///   "files_scanned": 93,
///   "ok": true,
///   "rules": [
///     {"rule": "panic_freedom", "count": 2, "baseline": 2, "regressed": false,
///      "violations": [{"file": "...", "line": 7, "message": "..."}]}
///   ]
/// }
/// ```
pub fn render_json(report: &RatchetReport, files_scanned: usize) -> String {
    let mut s = String::with_capacity(2048);
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": {},\n", json_string(JSON_SCHEMA)));
    s.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    s.push_str(&format!("  \"ok\": {},\n", report.ok()));
    s.push_str("  \"rules\": [\n");
    for (i, o) in report.outcomes.iter().enumerate() {
        s.push_str("    {");
        s.push_str(&format!("\"rule\": {}, ", json_string(o.rule.name())));
        s.push_str(&format!("\"count\": {}, ", o.count));
        s.push_str(&format!("\"baseline\": {}, ", o.allowed));
        s.push_str(&format!("\"regressed\": {}, ", o.regressed()));
        s.push_str("\"violations\": [");
        for (j, v) in o.violations.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"file\": {}, \"line\": {}, \"message\": {}}}",
                json_string(&v.file),
                v.line,
                json_string(&v.message)
            ));
        }
        s.push_str("]}");
        s.push_str(if i + 1 < report.outcomes.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Minimal JSON string escaping (paths and messages are ASCII in
/// practice, but escape defensively).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The rule catalog as text (for `fpb lint --rules`).
pub fn render_rule_catalog() -> String {
    let mut s = String::from("fpb lint rules:\n");
    for rule in Rule::ALL {
        s.push_str(&format!("  {:<24} {}\n", rule.name(), rule.rationale()));
    }
    s.push_str(
        "\nsuppress intentional exceptions with `// fpb-lint: allow(rule)` (this \
         line + next)\nor `// fpb-lint: allow-file(rule)`; allowlist existing debt \
         in lint-baseline.toml\n",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::{check_ratchet, Baseline};
    use crate::rules::Violation;

    fn sample_report(count: usize, allowed: u64) -> RatchetReport {
        let vs: Vec<Violation> = (0..count)
            .map(|i| Violation {
                rule: Rule::PanicFreedom,
                file: "crates/core/src/ledger.rs".into(),
                line: i as u32 + 1,
                message: "`.unwrap()` can panic; use a typed error path".into(),
            })
            .collect();
        let mut counts = std::collections::BTreeMap::new();
        counts.insert("panic_freedom".to_string(), allowed);
        check_ratchet(&vs, &Baseline::from_counts(counts))
    }

    #[test]
    fn text_lists_regressions_with_file_line() {
        let r = sample_report(2, 1);
        let text = render_text(&r, 10);
        assert!(text.contains("panic_freedom REGRESSED"));
        assert!(text.contains("crates/core/src/ledger.rs:1:"));
        assert!(text.contains("crates/core/src/ledger.rs:2:"));
        assert!(text.contains("FAILED"));
    }

    #[test]
    fn text_notes_improvements() {
        let r = sample_report(1, 5);
        let text = render_text(&r, 10);
        assert!(text.contains("improved"));
        assert!(text.contains("--update-baseline"));
        assert!(text.contains("OK"));
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let r = sample_report(2, 1);
        let j = render_json(&r, 42);
        assert!(j.contains("\"schema\": \"fpb-lint/v1\""));
        assert!(j.contains("\"files_scanned\": 42"));
        assert!(j.contains("\"ok\": false"));
        assert!(j.contains("\"rule\": \"panic_freedom\""));
        assert!(j.contains("\"count\": 2"));
        assert!(j.contains("\"baseline\": 1"));
        // Every rule appears, even clean ones.
        for rule in Rule::ALL {
            assert!(j.contains(&format!("\"rule\": \"{}\"", rule.name())), "{rule}");
        }
        // Crude balance check on braces/brackets (no parser available).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn json_escapes_strings() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("line\nbreak"), "\"line\\nbreak\"");
    }

    #[test]
    fn catalog_names_every_rule() {
        let c = render_rule_catalog();
        for rule in Rule::ALL {
            assert!(c.contains(rule.name()), "{rule}");
        }
    }
}
