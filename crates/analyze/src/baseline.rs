//! The ratchet baseline: checked-in per-rule debt counts.
//!
//! `lint-baseline.toml` allowlists *existing* violations by rule count.
//! The ratchet accepts a scan iff every rule's current count is at or
//! below its baseline; any increase fails with file:line diagnostics for
//! the regressed rule. Counts may only go down — when debt is burned
//! down, `fpb lint --update-baseline` rewrites the file so the new, lower
//! count becomes the ceiling.
//!
//! The format is a deliberately tiny TOML subset (one `[rules]` table of
//! `name = count` pairs) so the zero-dependency parser stays honest.

use std::collections::BTreeMap;

use crate::rules::{Rule, Violation};

/// Parsed baseline: rule name → allowed violation count. Rules absent
/// from the file have an implicit baseline of zero.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    counts: BTreeMap<String, u64>,
}

impl Baseline {
    /// An empty baseline (every rule must be clean).
    pub fn empty() -> Self {
        Baseline::default()
    }

    /// Builds a baseline from explicit counts (rule name → count).
    pub fn from_counts(counts: BTreeMap<String, u64>) -> Self {
        Baseline { counts }
    }

    /// The allowed count for a rule (0 when unlisted).
    pub fn allowed(&self, rule: Rule) -> u64 {
        self.counts.get(rule.name()).copied().unwrap_or(0)
    }

    /// Parses the `lint-baseline.toml` subset: comments, blank lines, one
    /// `[rules]` section of `name = integer` pairs.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line for anything outside
    /// the subset (unknown section, unknown rule, non-integer count) — a
    /// malformed baseline must fail loudly, not silently allow debt.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut counts = BTreeMap::new();
        let mut in_rules = false;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let lineno = idx + 1;
            if let Some(section) = line.strip_prefix('[') {
                let name = section.strip_suffix(']').ok_or_else(|| {
                    format!("baseline line {lineno}: unterminated section header `{raw}`")
                })?;
                if name.trim() != "rules" {
                    return Err(format!(
                        "baseline line {lineno}: unknown section `[{name}]` (expected [rules])"
                    ));
                }
                in_rules = true;
                continue;
            }
            if !in_rules {
                return Err(format!(
                    "baseline line {lineno}: entry before [rules] section"
                ));
            }
            let (key, value) = line.split_once('=').ok_or_else(|| {
                format!("baseline line {lineno}: expected `rule = count`, got `{raw}`")
            })?;
            let key = key.trim();
            if Rule::from_name(key).is_none() {
                return Err(format!("baseline line {lineno}: unknown rule `{key}`"));
            }
            let count: u64 = value.trim().parse().map_err(|_| {
                format!(
                    "baseline line {lineno}: count for `{key}` must be an integer, got `{}`",
                    value.trim()
                )
            })?;
            if counts.insert(key.to_string(), count).is_some() {
                return Err(format!("baseline line {lineno}: duplicate rule `{key}`"));
            }
        }
        Ok(Baseline { counts })
    }

    /// Renders the baseline in its canonical checked-in form.
    pub fn to_toml(&self) -> String {
        let mut s = String::new();
        s.push_str("# fpb lint ratchet baseline — per-rule allowlisted debt.\n");
        s.push_str("#\n");
        s.push_str("# Counts may only DECREASE. `fpb lint` fails when a rule's violation\n");
        s.push_str("# count exceeds its entry here; after burning debt down, refresh with\n");
        s.push_str("# `fpb lint --update-baseline`. Rules not listed must be clean.\n");
        s.push_str("\n[rules]\n");
        for rule in Rule::ALL {
            if let Some(&n) = self.counts.get(rule.name()) {
                if n > 0 {
                    s.push_str(&format!("{} = {n}\n", rule.name()));
                }
            }
        }
        s
    }
}

/// Per-rule outcome of checking a scan against the baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleOutcome {
    /// The rule.
    pub rule: Rule,
    /// Violations found in this scan.
    pub count: u64,
    /// Allowed count from the baseline.
    pub allowed: u64,
    /// The rule's violations (empty when clean).
    pub violations: Vec<Violation>,
}

impl RuleOutcome {
    /// True when this rule regressed past its baseline.
    pub fn regressed(&self) -> bool {
        self.count > self.allowed
    }

    /// True when debt was burned down below the baseline (the baseline
    /// should be tightened).
    pub fn improved(&self) -> bool {
        self.count < self.allowed
    }
}

/// The full ratchet verdict for one scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RatchetReport {
    /// One outcome per rule, in [`Rule::ALL`] order.
    pub outcomes: Vec<RuleOutcome>,
}

impl RatchetReport {
    /// True iff no rule regressed. (Improvements pass — with a nudge to
    /// tighten the baseline — so burn-down PRs don't chicken-and-egg.)
    pub fn ok(&self) -> bool {
        self.outcomes.iter().all(|o| !o.regressed())
    }

    /// Rules that regressed.
    pub fn regressions(&self) -> impl Iterator<Item = &RuleOutcome> {
        self.outcomes.iter().filter(|o| o.regressed())
    }

    /// Rules whose debt shrank below the baseline.
    pub fn improvements(&self) -> impl Iterator<Item = &RuleOutcome> {
        self.outcomes.iter().filter(|o| o.improved())
    }

    /// A baseline exactly matching this scan's counts (what
    /// `--update-baseline` writes).
    pub fn tightened_baseline(&self) -> Baseline {
        Baseline {
            counts: self
                .outcomes
                .iter()
                .filter(|o| o.count > 0)
                .map(|o| (o.rule.name().to_string(), o.count))
                .collect(),
        }
    }
}

/// Checks a scan's violations against the baseline ratchet.
pub fn check_ratchet(violations: &[Violation], baseline: &Baseline) -> RatchetReport {
    let outcomes = Rule::ALL
        .iter()
        .map(|&rule| {
            let vs: Vec<Violation> = violations
                .iter()
                .filter(|v| v.rule == rule)
                .cloned()
                .collect();
            RuleOutcome {
                rule,
                count: vs.len() as u64,
                allowed: baseline.allowed(rule),
                violations: vs,
            }
        })
        .collect();
    RatchetReport { outcomes }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violation(rule: Rule, line: u32) -> Violation {
        Violation {
            rule,
            file: "crates/core/src/x.rs".into(),
            line,
            message: "m".into(),
        }
    }

    #[test]
    fn parse_roundtrip() {
        let text = "# comment\n\n[rules]\npanic_freedom = 12 # inline\nhash_order = 3\n";
        let b = Baseline::parse(text).unwrap();
        assert_eq!(b.allowed(Rule::PanicFreedom), 12);
        assert_eq!(b.allowed(Rule::HashOrder), 3);
        assert_eq!(b.allowed(Rule::FloatEq), 0, "unlisted rules default to 0");
        let b2 = Baseline::parse(&b.to_toml()).unwrap();
        assert_eq!(b, b2);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Baseline::parse("[rules]\nnot_a_rule = 3\n").is_err());
        assert!(Baseline::parse("[other]\n").is_err());
        assert!(Baseline::parse("panic_freedom = 1\n").is_err(), "before section");
        assert!(Baseline::parse("[rules]\npanic_freedom = lots\n").is_err());
        assert!(Baseline::parse("[rules]\npanic_freedom = 1\npanic_freedom = 2\n").is_err());
        assert!(Baseline::parse("[rules\n").is_err());
    }

    #[test]
    fn ratchet_accepts_at_or_below_and_rejects_above() {
        let mut counts = BTreeMap::new();
        counts.insert("panic_freedom".to_string(), 2);
        let baseline = Baseline::from_counts(counts);

        let at = vec![violation(Rule::PanicFreedom, 1), violation(Rule::PanicFreedom, 2)];
        assert!(check_ratchet(&at, &baseline).ok());

        let below = vec![violation(Rule::PanicFreedom, 1)];
        let r = check_ratchet(&below, &baseline);
        assert!(r.ok());
        assert_eq!(r.improvements().count(), 1);

        let above = vec![
            violation(Rule::PanicFreedom, 1),
            violation(Rule::PanicFreedom, 2),
            violation(Rule::PanicFreedom, 3),
        ];
        let r = check_ratchet(&above, &baseline);
        assert!(!r.ok());
        let reg: Vec<_> = r.regressions().collect();
        assert_eq!(reg.len(), 1);
        assert_eq!(reg[0].count, 3);
        assert_eq!(reg[0].allowed, 2);
    }

    #[test]
    fn unlisted_rule_must_be_clean() {
        let baseline = Baseline::empty();
        let r = check_ratchet(&[violation(Rule::FloatEq, 9)], &baseline);
        assert!(!r.ok());
    }

    #[test]
    fn tightened_baseline_matches_current_counts() {
        let vs = vec![violation(Rule::PanicFreedom, 1), violation(Rule::HashOrder, 2)];
        let r = check_ratchet(&vs, &Baseline::empty());
        let tight = r.tightened_baseline();
        assert_eq!(tight.allowed(Rule::PanicFreedom), 1);
        assert_eq!(tight.allowed(Rule::HashOrder), 1);
        assert_eq!(tight.allowed(Rule::FloatEq), 0);
        // Round-trips through the TOML form.
        assert_eq!(Baseline::parse(&tight.to_toml()).unwrap(), tight);
    }
}
