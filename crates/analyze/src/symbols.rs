//! The workspace symbol table: every parsed `fn` item across every
//! scanned file, with deterministic IDs and name-based lookup indexes.
//!
//! Function IDs are indexes into a list sorted by `(file, line)`, so the
//! table — and everything built on it (call graph, BFS orders, rule
//! output) — is byte-identical regardless of the order files were read.
//! A proptest in `tests/semantic_determinism.rs` shuffles the visit order
//! to pin this.

use std::collections::BTreeMap;

use crate::semantic::{FileFacts, FnFact};

/// A function's identity in the workspace table.
pub type FnId = usize;

/// One resolved function symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbol {
    /// Repo-relative file the item is defined in.
    pub file: String,
    /// Crate key of that file.
    pub crate_key: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Bare function name.
    pub name: String,
    /// Enclosing impl type head, if any.
    pub self_ty: Option<String>,
    /// Whether the fn takes a `self` receiver.
    pub has_self: bool,
    /// Whether the item is test code.
    pub is_test: bool,
    /// Index of the originating [`FnFact`] inside its file's facts.
    pub fact: usize,
}

impl Symbol {
    /// Qualified display name (`System::run` or `claim_chunk`).
    pub fn qual(&self) -> String {
        match &self.self_ty {
            Some(ty) => format!("{ty}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The workspace symbol table.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// Symbols sorted by (file, line); `FnId` = index.
    pub fns: Vec<Symbol>,
    /// Bare name → ids bearing it (sorted).
    by_name: BTreeMap<String, Vec<FnId>>,
    /// `(self_ty, name)` → ids (sorted).
    by_typed: BTreeMap<(String, String), Vec<FnId>>,
}

impl SymbolTable {
    /// Builds the table from per-file facts. `facts` may arrive in any
    /// order; the table sorts by (file, line) internally.
    pub fn build(facts: &[FileFacts]) -> SymbolTable {
        let mut fns: Vec<Symbol> = Vec::new();
        for f in facts {
            for (k, item) in f.fns.iter().enumerate() {
                fns.push(Symbol {
                    file: f.rel_path.clone(),
                    crate_key: f.crate_key.clone(),
                    line: item.line,
                    name: item.name.clone(),
                    self_ty: item.self_ty.clone(),
                    has_self: item.has_self,
                    is_test: item.is_test,
                    fact: k,
                });
            }
        }
        fns.sort_by(|a, b| (&a.file, a.line, &a.name).cmp(&(&b.file, b.line, &b.name)));
        let mut by_name: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        let mut by_typed: BTreeMap<(String, String), Vec<FnId>> = BTreeMap::new();
        for (id, s) in fns.iter().enumerate() {
            by_name.entry(s.name.clone()).or_default().push(id);
            if let Some(ty) = &s.self_ty {
                by_typed
                    .entry((ty.clone(), s.name.clone()))
                    .or_default()
                    .push(id);
            }
        }
        SymbolTable {
            fns,
            by_name,
            by_typed,
        }
    }

    /// Ids of every fn with this bare name.
    pub fn named(&self, name: &str) -> &[FnId] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Ids of `Type::name` definitions.
    pub fn typed(&self, ty: &str, name: &str) -> &[FnId] {
        self.by_typed
            .get(&(ty.to_string(), name.to_string()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Looks up the fn fact behind a symbol.
    pub fn fact<'a>(&self, facts: &'a [FileFacts], id: FnId) -> Option<&'a FnFact> {
        let s = &self.fns[id];
        facts
            .iter()
            .find(|f| f.rel_path == s.file)
            .and_then(|f| f.fns.get(s.fact))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantic::file_facts;

    fn table(sources: &[(&str, &str, &str)]) -> (Vec<FileFacts>, SymbolTable) {
        let facts: Vec<FileFacts> = sources
            .iter()
            .map(|(path, key, src)| file_facts(path, key, src))
            .collect();
        let t = SymbolTable::build(&facts);
        (facts, t)
    }

    #[test]
    fn ids_are_order_invariant() {
        let a = ("b/two.rs", "sim", "fn beta() {} fn gamma() { beta() }");
        let b = ("a/one.rs", "core", "impl T { fn alpha(&self) {} }");
        let (_, t1) = table(&[a, b]);
        let (_, t2) = table(&[b, a]);
        assert_eq!(t1.fns, t2.fns, "symbol ids must not depend on file order");
        assert_eq!(t1.fns[0].qual(), "T::alpha");
    }

    #[test]
    fn name_and_typed_lookup() {
        let (_, t) = table(&[(
            "x.rs",
            "sim",
            "impl A { fn go(&self) {} }\nimpl B { fn go(&self) {} }\nfn go() {}",
        )]);
        assert_eq!(t.named("go").len(), 3);
        assert_eq!(t.typed("A", "go").len(), 1);
        assert_eq!(t.typed("C", "go").len(), 0);
    }
}
