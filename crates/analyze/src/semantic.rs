//! Per-file semantic fact extraction and the interprocedural link stage.
//!
//! The semantic rules split into two phases so the expensive half can be
//! cached per file (see [`crate::cache`]):
//!
//! 1. **Extraction** ([`file_facts`]) — lex + parse one file, run the
//!    lexical rules and the intra-procedural [`Rule::TokenLeak`] check,
//!    and record the interprocedural *facts*: every call site (with its
//!    conservative resolution kind), every panic site, and every
//!    nondeterminism source. Facts depend only on the file's own text, so
//!    a content-hash cache entry stays valid no matter what changed
//!    elsewhere.
//! 2. **Link** ([`link`]) — build the workspace symbol table and call
//!    graph from all files' facts and run the reachability rules:
//!    [`Rule::PanicReachability`] (shortest call chain from
//!    `System::run`/`step` to each panic site) and [`Rule::NondetTaint`]
//!    (nondeterminism sources transitively callable from metrics/report
//!    emission). Link always re-runs — it is cheap next to extraction.
//!
//! Directive suppression (`fpb-lint: allow(...)`) happens at extraction
//! time: a suppressed panic site or nondet source is simply not recorded,
//! so the link stage needs no access to comments.

use std::collections::BTreeSet;

use crate::callgraph::CallGraph;
use crate::cfg;
use crate::lexer::{lex, Lexed, TokKind, Token};
use crate::parser::{enclosing_fn, parse_items, FnItem};
use crate::rules::{self, Directives, Rule, Violation};
use crate::symbols::{FnId, SymbolTable};

/// How a call site names its callee (resolution happens in
/// [`CallGraph::build`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `name(...)` — a free call (or `Self`-less path the extractor
    /// could not type).
    Free,
    /// `recv.name(...)` — a method call on an unknown receiver type.
    Method,
    /// `Type::name(...)` — a typed path call (`Self` is substituted with
    /// the caller's impl type at extraction).
    Typed(String),
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Call {
    /// Callee's bare name.
    pub name: String,
    /// Resolution kind.
    pub kind: CallKind,
    /// 1-based source line of the call.
    pub line: u32,
}

/// A panic site or nondeterminism source inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteFact {
    /// 1-based source line.
    pub line: u32,
    /// What it is (`` `.unwrap()` ``, `` `Instant` wall-clock read ``).
    pub what: String,
}

/// Everything the link stage needs to know about one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnFact {
    /// Bare function name.
    pub name: String,
    /// Enclosing impl type, if any.
    pub self_ty: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the fn takes `self`.
    pub has_self: bool,
    /// Whether the fn is test code (facts below stay empty then).
    pub is_test: bool,
    /// Call sites in the body (innermost-fn attribution).
    pub calls: Vec<Call>,
    /// Unsuppressed panic sites in the body.
    pub panic_sites: Vec<SiteFact>,
    /// Unsuppressed nondeterminism sources in the body.
    pub nondet_sources: Vec<SiteFact>,
}

/// The cacheable analysis result for one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileFacts {
    /// Repo-relative path.
    pub rel_path: String,
    /// Crate key (see [`Rule::applies_to`]).
    pub crate_key: String,
    /// FNV-1a-64 hash of the file's text (the cache key).
    pub hash: u64,
    /// Whether the file contains any `unsafe` token.
    pub has_unsafe: bool,
    /// Whether this is a crate root (`src/lib.rs`).
    pub is_crate_root: bool,
    /// Crate root only: whether `#![forbid(unsafe_code)]` is present.
    pub root_has_forbid: bool,
    /// Crate root only: whether the root allow-files the forbid rule.
    pub root_allows_forbid: bool,
    /// Per-file violations: every lexical rule plus [`Rule::TokenLeak`].
    pub violations: Vec<Violation>,
    /// Function facts for the link stage.
    pub fns: Vec<FnFact>,
}

/// FNV-1a 64-bit content hash — the cache key for a file's facts.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Ledger/manager functions whose return value carries granted power
/// tokens (or the scratch that recycles them) and must therefore be
/// released, returned, stored, or propagated on every exit path.
const ACQUIRE_FNS: [&str; 4] = [
    "try_grant_flat",
    "try_grant_chips",
    "take_scratch",
    "take_grant_scratch",
];

/// Keywords that look like calls when followed by `(` but are not.
const NON_CALL_KEYWORDS: [&str; 14] = [
    "if", "while", "match", "for", "loop", "return", "let", "as", "move", "ref", "mut", "break",
    "in", "await",
];

/// Extracts one file's facts: lexical + intra-procedural violations and
/// the call/panic/nondet records the link stage consumes.
pub fn file_facts(rel_path: &str, crate_key: &str, src: &str) -> FileFacts {
    let lexed = lex(src);
    let items = parse_items(&lexed);
    let allow = Directives::parse(&lexed.comments);
    let test_file = rules::is_test_file(rel_path);
    let test_lines = rules::test_region_lines(&lexed.tokens);

    let mut violations = rules::scan_lexed(rel_path, crate_key, &lexed);
    violations.extend(token_leaks(
        rel_path, crate_key, &lexed, &items, &allow, test_file,
    ));

    let mut fns: Vec<FnFact> = items
        .iter()
        .map(|it| FnFact {
            name: it.name.clone(),
            self_ty: it.self_ty.clone(),
            line: it.line,
            has_self: it.has_self,
            is_test: test_file || it.is_test,
            calls: Vec::new(),
            panic_sites: Vec::new(),
            nondet_sources: Vec::new(),
        })
        .collect();

    extract_fn_facts(&lexed, &items, &mut fns, &allow, test_file, &test_lines);

    FileFacts {
        rel_path: rel_path.to_string(),
        crate_key: crate_key.to_string(),
        hash: fnv1a64(src.as_bytes()),
        has_unsafe: lexed.tokens.iter().any(|t| t.is_ident("unsafe")),
        is_crate_root: rel_path.replace('\\', "/").ends_with("src/lib.rs"),
        root_has_forbid: src.contains("#![forbid(unsafe_code)]"),
        root_allows_forbid: src.contains("fpb-lint: allow-file(missing_forbid_unsafe)"),
        violations,
        fns,
    }
}

/// One pass over the token stream filling each function's calls, panic
/// sites, and nondeterminism sources. Test functions keep empty facts:
/// they are never roots, and edges into them resolve to fns whose own
/// facts are empty anyway.
fn extract_fn_facts(
    lexed: &Lexed,
    items: &[FnItem],
    fns: &mut [FnFact],
    allow: &Directives,
    test_file: bool,
    test_lines: &BTreeSet<u32>,
) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let Some(owner) = enclosing_fn(items, i) else {
            continue;
        };
        let in_test = test_file || fns[owner].is_test || test_lines.contains(&t.line);
        if in_test {
            continue;
        }
        let name = t.text.as_str();

        // Call sites: `ident(` that is not a definition or keyword.
        if toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && !NON_CALL_KEYWORDS.contains(&name)
            && !(i > 0 && toks[i - 1].is_ident("fn"))
        {
            let kind = if i > 0 && toks[i - 1].is_punct('.') {
                CallKind::Method
            } else if i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':') {
                match toks.get(i.wrapping_sub(3)) {
                    Some(seg)
                        if seg.kind == TokKind::Ident
                            && seg.text.starts_with(char::is_uppercase) =>
                    {
                        let ty = if seg.text == "Self" {
                            fns[owner].self_ty.clone().unwrap_or_else(|| "Self".into())
                        } else {
                            seg.text.clone()
                        };
                        CallKind::Typed(ty)
                    }
                    // `module::f(...)` — resolve by bare name.
                    _ => CallKind::Free,
                }
            } else {
                CallKind::Free
            };
            fns[owner].calls.push(Call {
                name: name.to_string(),
                kind,
                line: t.line,
            });
        }

        // Panic sites (mirrors the lexical panic_freedom patterns, but
        // suppressed by the panic_reachability directive).
        let panic_what = if (name == "unwrap" || name == "expect")
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            Some(format!("`.{name}()`"))
        } else if rules::PANIC_MACROS.contains(&name)
            && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            Some(format!("`{name}!`"))
        } else {
            None
        };
        if let Some(what) = panic_what {
            if !allow.allows(Rule::PanicReachability, t.line) {
                fns[owner].panic_sites.push(SiteFact { line: t.line, what });
            }
        }

        // Nondeterminism sources.
        let nondet_what = match name {
            "Instant" | "SystemTime" => Some(format!("`{name}` wall-clock read")),
            "HashMap" | "HashSet" => Some(format!("`{name}` iteration order")),
            "ThreadId" => Some("thread id".to_string()),
            "env" => {
                let path_use = i > 0
                    && toks[i - 1].is_punct(':')
                    && !toks.get(i + 1).is_some_and(|n| n.is_punct('!'));
                let call_use = toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
                    && toks.get(i + 3).is_some_and(|n| n.is_ident("var"));
                (path_use || call_use).then(|| "`std::env` read".to_string())
            }
            "thread" => (toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
                && toks.get(i + 3).is_some_and(|n| n.is_ident("current")))
            .then(|| "thread id".to_string()),
            _ => None,
        };
        if let Some(what) = nondet_what {
            if !allow.allows(Rule::NondetTaint, t.line) {
                fns[owner]
                    .nondet_sources
                    .push(SiteFact { line: t.line, what });
            }
        }
    }
}

/// The intra-procedural [`Rule::TokenLeak`] check: every acquisition
/// call site is classified, and bound grants get a must-consume walk
/// over the CFG sketch.
fn token_leaks(
    rel_path: &str,
    crate_key: &str,
    lexed: &Lexed,
    items: &[FnItem],
    allow: &Directives,
    test_file: bool,
) -> Vec<Violation> {
    let mut out = Vec::new();
    if !Rule::TokenLeak.applies_to(crate_key) || test_file {
        return out;
    }
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident
            || !ACQUIRE_FNS.contains(&t.text.as_str())
            || !toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            || (i > 0 && toks[i - 1].is_ident("fn"))
        {
            continue;
        }
        let Some(owner) = enclosing_fn(items, i) else {
            continue;
        };
        if items[owner].is_test || allow.allows(Rule::TokenLeak, t.line) {
            continue;
        }
        if let Some(msg) = acquisition_leak(toks, &items[owner], i) {
            out.push(Violation {
                rule: Rule::TokenLeak,
                file: rel_path.to_string(),
                line: t.line,
                message: format!("`{}` grant {msg}", t.text),
            });
        }
    }
    out
}

/// Classifies one acquisition call at token `i` inside `item`'s body.
/// Returns a leak description, or `None` when every exit path consumes
/// the grant (or the value demonstrably escapes: returned, stored,
/// passed as an argument, chained, or propagated).
fn acquisition_leak(toks: &[Token], item: &FnItem, i: usize) -> Option<String> {
    let (body_open, body_close) = item.body;
    let stmts = cfg::parse_block(toks, body_open + 1, body_close);
    let block = cfg::block_containing(&stmts, i);
    let plain = block.iter().find_map(|s| match s {
        cfg::Stmt::Plain(a, b) if *a <= i && i < *b => Some((*a, *b)),
        _ => None,
    });
    let (s, e) = plain?;

    // Control-flow headers (`if let`, `while let`, `match` scrutinees)
    // bind the grant inside the block that follows.
    if matches!(toks[s].text.as_str(), "if" | "while" | "match" | "for")
        && toks[s].kind == TokKind::Ident
    {
        return header_acquisition_leak(toks, item, s, i);
    }

    if toks[s].is_ident("let") {
        let Some(var) = let_binding_var(toks, s + 1, i) else {
            // `let _ = acq()` discards; other irrefutable patterns we
            // cannot name are given the benefit of the doubt.
            if toks.get(s + 1).is_some_and(|t| t.is_ident("_")) {
                return Some("is discarded by `let _`".to_string());
            }
            return None;
        };
        // For `let PAT = init else { diverge };` the bound variable does
        // not exist on the diverging path — skip past the else arm.
        let from = if toks.get(e).is_some_and(|t| t.is_ident("else"))
            && toks.get(e + 1).is_some_and(|t| t.is_punct('{'))
        {
            cfg::match_group(toks, e + 1, body_close, '{', '}')
        } else {
            e
        };
        return render_leaks(cfg::find_leaks(toks, block, &var, from, 0), &var);
    }
    if toks[s].is_ident("return") {
        return None; // returned to the caller — theirs now
    }
    // Trailing expression of a block: the value flows outward.
    if toks.get(e).is_none_or(|t| t.is_punct('}')) {
        return None;
    }
    // Argument / struct-field / closure-capture position.
    if group_nest(toks, s, i) > 0 {
        return None;
    }
    // Assignment target somewhere before the call (`self.hold = acq();`).
    if (s..i).any(|k| {
        toks[k].is_punct('=')
            && !toks.get(k + 1).is_some_and(|n| n.is_punct('='))
            && !toks.get(k.wrapping_sub(1)).is_some_and(|p| {
                matches!(p.kind, TokKind::Punct(c) if "<>=!+-*/%&|^".contains(c))
            })
    }) {
        return None;
    }
    // Chained (`acq().map(...)`) or propagated (`acq()?`).
    let close = cfg::match_group(toks, i + 1, e, '(', ')');
    if toks
        .get(close + 1)
        .is_some_and(|n| n.is_punct('.') || n.is_punct('?'))
    {
        return None;
    }
    Some("result is discarded (never bound, stored, or returned)".to_string())
}

/// `if let`/`while let`/`match` acquisition: the grant binds inside the
/// block that follows the header starting at `s`, which must consume it
/// on every path.
fn header_acquisition_leak(toks: &[Token], item: &FnItem, s: usize, i: usize) -> Option<String> {
    let (_, body_close) = item.body;
    if toks[s].is_ident("match") {
        let open = cfg::find_body_open(toks, i, body_close)?;
        let close = cfg::match_group(toks, open, body_close, '{', '}');
        for ((ps, pe), arm) in cfg::split_match_arms(toks, open, close) {
            let Some(var) = pattern_binding_var(toks, ps, pe) else {
                continue; // no binding (e.g. `None =>`) — nothing held
            };
            if let Some(msg) = render_leaks(cfg::find_leaks(toks, &arm, &var, 0, 0), &var) {
                return Some(msg);
            }
        }
        return None;
    }
    // `if let` / `while let`: the pattern var binds in the first arm.
    let let_pos = (s..i).find(|&k| toks[k].is_ident("let"))?;
    let var = let_binding_var(toks, let_pos + 1, i)?;
    let open = cfg::find_body_open(toks, i, body_close)?;
    let close = cfg::match_group(toks, open, body_close, '{', '}');
    let arm = cfg::parse_block(toks, open + 1, close);
    render_leaks(cfg::find_leaks(toks, &arm, &var, 0, 0), &var)
}

/// Extracts the variable a `let` binds, given the token just after `let`
/// and the acquisition position as a scan bound. Handles `let [mut] g =`,
/// `let Some(g) =`, `let Ok(mut g) =`. Complex patterns return `None`.
fn let_binding_var(toks: &[Token], mut j: usize, bound: usize) -> Option<String> {
    if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    let first = toks.get(j)?;
    if first.kind != TokKind::Ident || first.text == "_" {
        return None;
    }
    if toks.get(j + 1).is_some_and(|t| t.is_punct('(')) {
        return pattern_binding_var(toks, j, bound);
    }
    // `let g = ...` or `let g: Grant = ...`.
    let next = toks.get(j + 1)?;
    (next.is_punct('=') || next.is_punct(':')).then(|| first.text.clone())
}

/// The single identifier bound inside a `Some(...)`/`Ok(...)`-style
/// pattern in `[s, e)`, or `None` for patterns with zero or several
/// candidate bindings.
fn pattern_binding_var(toks: &[Token], s: usize, e: usize) -> Option<String> {
    let open = (s..e).find(|&k| toks[k].is_punct('('))?;
    let close = cfg::match_group(toks, open, e, '(', ')');
    let mut var = None;
    for t in &toks[open + 1..close] {
        if t.kind == TokKind::Ident && !matches!(t.text.as_str(), "mut" | "ref" | "_") {
            if var.is_some() {
                return None; // several bindings — give up, no FP
            }
            var = Some(t.text.clone());
        }
    }
    var
}

/// Paren/bracket/brace nesting depth of token `i` relative to `s`.
fn group_nest(toks: &[Token], s: usize, i: usize) -> i32 {
    let mut nest = 0i32;
    for t in &toks[s..i] {
        match t.kind {
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => nest += 1,
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => nest -= 1,
            _ => {}
        }
    }
    nest
}

/// Formats the walk's leaks into one violation message.
fn render_leaks(leaks: Vec<cfg::Leak>, var: &str) -> Option<String> {
    if leaks.is_empty() {
        return None;
    }
    let parts: Vec<String> = leaks
        .iter()
        .map(|l| match l.kind {
            "end of scope" => "is dropped at end of scope without release".to_string(),
            kind => format!("leaks on {kind} at line {}", l.line),
        })
        .collect();
    Some(format!("bound to `{var}` {}", parts.join("; ")))
}

/// The interprocedural link stage: reachability rules over the whole
/// workspace's facts. Input order does not matter — the symbol table
/// sorts internally and BFS tie-breaking is deterministic.
pub fn link(facts: &[FileFacts]) -> Vec<Violation> {
    let table = SymbolTable::build(facts);
    let graph = CallGraph::build(&table, facts);
    let mut out = Vec::new();

    // panic_reachability: panic sites on call chains from the engine's
    // public stepping entry points.
    let roots: Vec<FnId> = table
        .fns
        .iter()
        .enumerate()
        .filter(|(_, s)| {
            !s.is_test
                && s.self_ty.as_deref() == Some("System")
                && matches!(s.name.as_str(), "run" | "step")
        })
        .map(|(id, _)| id)
        .collect();
    if !roots.is_empty() {
        let parent = graph.shortest_paths(&roots);
        for (id, sym) in table.fns.iter().enumerate() {
            if parent[id].is_none()
                || sym.is_test
                || !Rule::PanicReachability.applies_to(&sym.crate_key)
            {
                continue;
            }
            let Some(fact) = table.fact(facts, id) else {
                continue;
            };
            for site in &fact.panic_sites {
                out.push(Violation {
                    rule: Rule::PanicReachability,
                    file: sym.file.clone(),
                    line: site.line,
                    message: format!(
                        "{} reachable from the engine via {}",
                        site.what,
                        graph.chain(&table, &parent, id)
                    ),
                });
            }
        }
    }

    // nondet_taint: nondeterminism sources transitively callable from
    // metrics/report emission, or from the inspect recorder / event
    // wire codec — a nondeterministic value reaching the event log
    // would break record→replay byte-identity.
    let sinks: Vec<FnId> = table
        .fns
        .iter()
        .enumerate()
        .filter(|(_, s)| {
            !s.is_test
                && Rule::NondetTaint.applies_to(&s.crate_key)
                && (s.self_ty.as_deref() == Some("Metrics")
                    || s.self_ty.as_deref() == Some("LifecycleEvent")
                    || s.self_ty.as_deref() == Some("EventLogWriter")
                    || s.self_ty.as_deref() == Some("MetricsDeriver")
                    || s.file.ends_with("metrics.rs")
                    || s.file.ends_with("report.rs")
                    || s.file.ends_with("inspect/recorder.rs")
                    || s.file.ends_with("inspect/event.rs")
                    || s.file.ends_with("inspect/cursor.rs"))
        })
        .map(|(id, _)| id)
        .collect();
    if !sinks.is_empty() {
        let parent = graph.shortest_paths(&sinks);
        for (id, sym) in table.fns.iter().enumerate() {
            if parent[id].is_none()
                || sym.is_test
                || !Rule::NondetTaint.applies_to(&sym.crate_key)
            {
                continue;
            }
            let Some(fact) = table.fact(facts, id) else {
                continue;
            };
            for site in &fact.nondet_sources {
                out.push(Violation {
                    rule: Rule::NondetTaint,
                    file: sym.file.clone(),
                    line: site.line,
                    message: format!(
                        "{} feeds metrics/report output via {}",
                        site.what,
                        graph.chain(&table, &parent, id)
                    ),
                });
            }
        }
    }
    out
}

/// Full analysis over a set of facts: per-file violations plus the link
/// stage, in stable (file, line, rule) order.
pub fn analyze(facts: &[FileFacts]) -> Vec<Violation> {
    let mut out: Vec<Violation> = facts.iter().flat_map(|f| f.violations.clone()).collect();
    out.extend(link(facts));
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out
}

/// Single-file convenience used by the fixture harness: extraction plus
/// a link over just this file.
pub fn scan_semantic(rel_path: &str, crate_key: &str, src: &str) -> Vec<Violation> {
    analyze(&[file_facts(rel_path, crate_key, src)])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<(Rule, u32)> {
        scan_semantic("crates/sim/src/x.rs", "sim", src)
            .into_iter()
            .map(|v| (v.rule, v.line))
            .collect()
    }

    fn leaks(src: &str) -> Vec<u32> {
        findings(src)
            .into_iter()
            .filter(|(r, _)| *r == Rule::TokenLeak)
            .map(|(_, l)| l)
            .collect()
    }

    #[test]
    fn leaked_grant_is_flagged_with_exit_kind() {
        let src = "impl Mgr {\n\
                   fn bad(&mut self) -> Result<(), E> {\n\
                       let g = self.ledger.try_grant_flat(need);\n\
                       self.audit()?;\n\
                       self.ledger.release(&g);\n\
                       Ok(())\n\
                   } }";
        assert_eq!(leaks(src), vec![3]);
    }

    #[test]
    fn released_on_all_paths_is_clean() {
        let src = "impl Mgr {\n\
                   fn good(&mut self) {\n\
                       let g = self.ledger.try_grant_flat(need);\n\
                       if self.gate { self.hold(g); } else { self.ledger.release(&g); }\n\
                   } }";
        assert_eq!(leaks(src), Vec::<u32>::new());
    }

    #[test]
    fn discarded_result_is_flagged() {
        let src = "fn f(l: &mut Ledger) { l.try_grant_flat(d); }";
        assert_eq!(leaks(src), vec![1]);
    }

    #[test]
    fn returned_stored_and_argument_positions_are_clean() {
        let src = "impl M {\n\
                   fn a(&mut self) -> Option<Grant> { self.ledger.try_grant_flat(d) }\n\
                   fn b(&mut self) { self.hold = self.ledger.try_grant_flat(d); }\n\
                   fn c(&mut self) { self.stash(self.ledger.try_grant_flat(d)); }\n\
                   fn d(&mut self) -> A { A { g: self.power.take_grant_scratch() } }\n\
                   }";
        assert_eq!(leaks(src), Vec::<u32>::new());
    }

    #[test]
    fn if_let_acquisition_checks_the_arm() {
        let bad = "impl M { fn f(&mut self) {\n\
                   if let Some(g) = self.ledger.try_grant_flat(d) {\n\
                       if self.cold { return; }\n\
                       self.ledger.release(&g);\n\
                   } } }";
        assert_eq!(leaks(bad), vec![2]);
        let good = "impl M { fn f(&mut self) {\n\
                    if let Some(g) = self.ledger.try_grant_flat(d) {\n\
                        self.ledger.release(&g);\n\
                    } } }";
        assert_eq!(leaks(good), Vec::<u32>::new());
    }

    #[test]
    fn match_acquisition_checks_binding_arms() {
        let src = "impl M { fn f(&mut self) {\n\
                   match self.ledger.try_grant_chips(&d) {\n\
                       Some(g) => { self.log(); }\n\
                       None => {}\n\
                   } } }";
        assert_eq!(leaks(src), vec![2]);
    }

    #[test]
    fn let_else_divergence_does_not_hold_the_grant() {
        let src = "impl M { fn f(&mut self) -> Result<(), E> {\n\
                   let Some(g) = self.ledger.try_grant_flat(d) else { return Err(E); };\n\
                   self.ledger.release(&g);\n\
                   Ok(())\n\
                   } }";
        assert_eq!(leaks(src), Vec::<u32>::new());
    }

    #[test]
    fn definition_site_and_tests_are_exempt() {
        let src = "impl Ledger { pub fn try_grant_flat(&mut self, t: Tokens) -> Option<Grant> {\n\
                   None } }\n\
                   #[cfg(test)] mod tests { #[test] fn t(l: &mut Ledger) {\n\
                   l.try_grant_flat(d); } }";
        assert_eq!(leaks(src), Vec::<u32>::new());
    }

    #[test]
    fn panic_reachability_reports_shortest_chain() {
        let src = "impl System {\n\
                   pub fn run(&mut self) { self.tick() }\n\
                   fn tick(&mut self) { deep() } }\n\
                   fn deep() { inner.unwrap() }\n\
                   fn unrelated() { x.unwrap() }";
        let found = scan_semantic("crates/sim/src/x.rs", "sim", src);
        let reach: Vec<&Violation> = found
            .iter()
            .filter(|v| v.rule == Rule::PanicReachability)
            .collect();
        assert_eq!(reach.len(), 1, "only the reachable site: {found:?}");
        assert_eq!(reach[0].line, 4);
        assert!(
            reach[0].message.contains("System::run → System::tick → deep"),
            "chain missing: {}",
            reach[0].message
        );
    }

    #[test]
    fn nondet_taint_flags_sources_feeding_metrics() {
        let src = "impl Metrics {\n\
                   pub fn render(&self) -> String { stamp() } }\n\
                   fn stamp() -> String { let t = Instant::now(); fmt(t) }\n\
                   fn free_floating() { let t = Instant::now(); }";
        let found = scan_semantic("crates/sim/src/x.rs", "sim", src);
        let taint: Vec<&Violation> = found
            .iter()
            .filter(|v| v.rule == Rule::NondetTaint)
            .collect();
        assert_eq!(taint.len(), 1, "only the sink-reachable source: {found:?}");
        assert_eq!(taint[0].line, 3);
        assert!(taint[0].message.contains("Metrics::render → stamp"));
    }

    #[test]
    fn nondet_taint_covers_inspect_recorder_and_event_codec() {
        // A nondeterministic value feeding the event wire codec or the
        // recorder would break record→replay byte-identity, so both are
        // sinks like Metrics.
        let src = "impl LifecycleEvent {\n\
                   pub fn encode(&self) -> String { tag() } }\n\
                   fn tag() -> String { let t = Instant::now(); fmt(t) }";
        let found = scan_semantic("crates/sim/src/x.rs", "sim", src);
        let taint: Vec<&Violation> = found
            .iter()
            .filter(|v| v.rule == Rule::NondetTaint)
            .collect();
        assert_eq!(taint.len(), 1, "{found:?}");
        assert!(taint[0].message.contains("LifecycleEvent::encode → tag"));

        // Any function in the recorder file is a sink, whatever its type.
        let src = "pub fn frame(body: &str) -> String { salt() }\n\
                   fn salt() -> String { let t = Instant::now(); fmt(t) }";
        let found = scan_semantic("crates/sim/src/inspect/recorder.rs", "sim", src);
        assert!(
            found.iter().any(|v| v.rule == Rule::NondetTaint),
            "recorder file must be a taint sink: {found:?}"
        );
    }

    #[test]
    fn directives_suppress_semantic_sites() {
        let src = "impl System { pub fn run(&mut self) {\n\
                   // fpb-lint: allow(panic_freedom, panic_reachability) — documented abort\n\
                   panic!(\"boom\")\n\
                   } }";
        let found = findings(src);
        assert!(
            !found.iter().any(|(r, _)| *r == Rule::PanicReachability),
            "directive must suppress the site: {found:?}"
        );
    }

    #[test]
    fn atomic_ordering_requires_order_comment() {
        let src = "fn f(a: &AtomicU64) {\n\
                   let x = a.load(Ordering::Relaxed);\n\
                   // ORDER: independent counter, no cross-thread ordering\n\
                   let y = a.load(Ordering::Relaxed);\n\
                   let z = a.load(Ordering::SeqCst);\n\
                   }";
        let found = findings(src);
        assert_eq!(
            found
                .iter()
                .filter(|(r, _)| *r == Rule::AtomicOrdering)
                .map(|(_, l)| *l)
                .collect::<Vec<_>>(),
            vec![2]
        );
    }

    #[test]
    fn analyze_is_order_invariant() {
        let a = file_facts(
            "crates/sim/src/a.rs",
            "sim",
            "impl System { pub fn run(&mut self) { helper() } }",
        );
        let b = file_facts("crates/sim/src/b.rs", "sim", "fn helper() { x.unwrap() }");
        let ab = analyze(&[a.clone(), b.clone()]);
        let ba = analyze(&[b, a]);
        assert_eq!(ab, ba);
        assert!(ab.iter().any(|v| v.rule == Rule::PanicReachability));
    }

    #[test]
    fn fnv_hash_is_stable() {
        // Pinned values so cache files stay portable across builds.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"fpb"), fnv1a64(b"fpb"));
        assert_ne!(fnv1a64(b"fpb"), fnv1a64(b"fpc"));
    }
}
