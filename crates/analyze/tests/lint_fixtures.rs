//! Golden tests of the lint engine against the seeded-violation fixture
//! corpus in `tests/fixtures/`.
//!
//! Every fixture line expected to violate a rule carries a trailing
//! `//~ rule_name` marker; the test asserts the scanner reports exactly
//! the marked (rule, line) pairs — nothing missing, nothing extra. That
//! pins both the detectors and the exemptions (test regions, allow
//! directives, macro/ident distinctions) in one place.

use std::path::Path;

use fpb_analyze::baseline::{check_ratchet, Baseline};
use fpb_analyze::report::{render_json, render_text};
use fpb_analyze::rules::{scan_source, Rule};
use fpb_analyze::sarif::render_sarif;
use fpb_analyze::semantic::scan_semantic;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Expected (rule, line) pairs from `//~ rule_name` markers.
fn markers(src: &str) -> Vec<(Rule, u32)> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        if let Some(idx) = line.find("//~") {
            let name = line[idx + 3..].trim();
            let rule =
                Rule::from_name(name).unwrap_or_else(|| panic!("bad marker `{name}` line {i}"));
            out.push((rule, i as u32 + 1));
        }
    }
    out.sort();
    out
}

fn assert_fixture(name: &str, crate_key: &str) {
    let src = fixture(name);
    let mut got: Vec<(Rule, u32)> = scan_source(name, crate_key, &src)
        .iter()
        .map(|v| (v.rule, v.line))
        .collect();
    got.sort();
    assert_eq!(got, markers(&src), "{name} (crate key {crate_key})");
}

/// Like [`assert_fixture`] but through the semantic pipeline (item
/// parsing, CFG walks, and a single-file link stage), which the four
/// semantic rules need.
fn assert_semantic_fixture(name: &str, crate_key: &str) {
    let src = fixture(name);
    let mut got: Vec<(Rule, u32)> = scan_semantic(name, crate_key, &src)
        .iter()
        .map(|v| (v.rule, v.line))
        .collect();
    got.sort();
    assert_eq!(got, markers(&src), "{name} (crate key {crate_key})");
}

#[test]
fn panic_freedom_fixture() {
    assert_fixture("panic_freedom.rs", "core");
}

#[test]
fn token_leak_fixture() {
    assert_semantic_fixture("token_leak.rs", "core");
}

#[test]
fn token_leak_clean_twin() {
    assert_semantic_fixture("token_leak_clean.rs", "core");
}

#[test]
fn panic_reachability_fixture() {
    assert_semantic_fixture("panic_reachability.rs", "sim");
}

#[test]
fn panic_reachability_clean_twin() {
    assert_semantic_fixture("panic_reachability_clean.rs", "sim");
}

#[test]
fn nondet_taint_fixture() {
    assert_semantic_fixture("nondet_taint.rs", "sim");
}

#[test]
fn nondet_taint_clean_twin() {
    assert_semantic_fixture("nondet_taint_clean.rs", "sim");
}

#[test]
fn atomic_ordering_fixture() {
    assert_semantic_fixture("atomic_ordering.rs", "sim");
}

#[test]
fn atomic_ordering_clean_twin() {
    assert_semantic_fixture("atomic_ordering_clean.rs", "sim");
}

#[test]
fn semantic_fixtures_outside_scoped_crates_are_exempt() {
    // The semantic rules police the simulation crates only; the same
    // sources under an unscoped crate key report nothing.
    for name in [
        "token_leak.rs",
        "panic_reachability.rs",
        "nondet_taint.rs",
        "atomic_ordering.rs",
    ] {
        let src = fixture(name);
        assert!(
            scan_semantic(name, "analyze", &src).is_empty(),
            "{name} should be exempt outside the scoped crates"
        );
    }
}

#[test]
fn determinism_fixture() {
    assert_fixture("determinism.rs", "sim");
}

#[test]
fn hash_order_fixture() {
    assert_fixture("hash_order.rs", "core");
}

#[test]
fn truncating_cast_fixture() {
    assert_fixture("truncating_cast.rs", "types");
}

#[test]
fn float_eq_fixture() {
    assert_fixture("float_eq.rs", "pcm");
}

#[test]
fn unsafe_hygiene_fixture() {
    assert_fixture("unsafe_hygiene.rs", "trace");
}

#[test]
fn scheme_isolation_fixture() {
    assert_fixture("scheme_isolation.rs", "sim");
}

#[test]
fn scheme_isolation_is_exempt_inside_the_scheme_module() {
    // The same mutations under a scheme-module path report nothing: the
    // module is the one place allowed to compose policy.
    let src = fixture("scheme_isolation.rs");
    assert!(
        scan_source("crates/sim/src/scheme/setup.rs", "sim", &src).is_empty(),
        "scheme module paths must be exempt"
    );
}

#[test]
fn allow_file_fixture_is_clean() {
    assert_fixture("allow_file.rs", "core");
}

#[test]
fn fixtures_outside_scoped_crates_are_exempt() {
    // The determinism/hash/panic rules only police the simulation crates;
    // the same sources under an unscoped crate key report nothing.
    for name in ["panic_freedom.rs", "determinism.rs", "hash_order.rs"] {
        let src = fixture(name);
        assert!(
            scan_source(name, "analyze", &src).is_empty(),
            "{name} should be exempt outside the scoped crates"
        );
    }
}

#[test]
fn every_rule_is_covered_by_a_fixture() {
    let all: std::collections::BTreeSet<Rule> = [
        "panic_freedom.rs",
        "determinism.rs",
        "hash_order.rs",
        "truncating_cast.rs",
        "float_eq.rs",
        "unsafe_hygiene.rs",
        "scheme_isolation.rs",
        "token_leak.rs",
        "panic_reachability.rs",
        "nondet_taint.rs",
        "atomic_ordering.rs",
    ]
    .iter()
    .flat_map(|name| markers(&fixture(name)).into_iter().map(|(r, _)| r))
    .collect();
    for rule in Rule::ALL {
        // MissingForbidUnsafe is a per-crate aggregate, exercised by the
        // workspace-level tests in the lib instead of a file fixture.
        if rule == Rule::MissingForbidUnsafe {
            continue;
        }
        assert!(all.contains(&rule), "no fixture covers {rule}");
    }
}

#[test]
fn golden_text_report() {
    let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
    let vs = scan_source("crates/core/src/f.rs", "core", src);
    let report = check_ratchet(&vs, &Baseline::empty());
    let expected = "\
rule panic_freedom REGRESSED: 1 violation(s), baseline allows 0
  rationale: hot paths must degrade gracefully, not panic
  crates/core/src/f.rs:1: panic_freedom: `.unwrap()` can panic; use a typed error path
fpb lint: 1 file(s), 1 violation(s) (0 allowlisted) — FAILED
";
    assert_eq!(render_text(&report, 1), expected);
}

#[test]
fn golden_json_report_shape() {
    let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
    let vs = scan_source("crates/core/src/f.rs", "core", src);
    let report = check_ratchet(&vs, &Baseline::empty());
    let json = render_json(&report, 1);
    let expected_rule_line = "    {\"rule\": \"panic_freedom\", \"count\": 1, \"baseline\": 0, \
                              \"regressed\": true, \"violations\": [{\"file\": \
                              \"crates/core/src/f.rs\", \"line\": 1, \"message\": \"`.unwrap()` \
                              can panic; use a typed error path\"}]},";
    assert!(
        json.lines().any(|l| l == expected_rule_line),
        "missing golden rule line in:\n{json}"
    );
    assert!(json.starts_with("{\n  \"schema\": \"fpb-lint/v1\",\n"));
    assert!(json.contains("\"ok\": false"));
}

#[test]
fn golden_sarif_report_shape() {
    let src = fixture("token_leak.rs");
    let vs = scan_semantic("token_leak.rs", "core", &src);
    assert!(!vs.is_empty(), "fixture must seed findings");
    let report = check_ratchet(&vs, &Baseline::empty());
    let sarif = render_sarif(&report);
    assert!(sarif.contains("\"version\": \"2.1.0\""));
    assert!(sarif.contains("\"name\": \"fpb-lint\""));
    // The full rule catalog rides along even for rules with no results.
    for rule in Rule::ALL {
        assert!(
            sarif.contains(&format!("\"id\": \"{rule}\"")),
            "missing catalog entry for {rule} in:\n{sarif}"
        );
    }
    // Unbaselined findings surface as errors with physical locations.
    assert!(sarif.contains("\"ruleId\": \"token_leak\""));
    assert!(sarif.contains("\"level\": \"error\""));
    assert!(sarif.contains("\"uri\": \"token_leak.rs\""));
    // A baseline covering the findings downgrades them to warnings.
    let mut counts = std::collections::BTreeMap::new();
    counts.insert("token_leak".to_string(), vs.len() as u64);
    let allowed = check_ratchet(&vs, &Baseline::from_counts(counts));
    let sarif_allowed = render_sarif(&allowed);
    assert!(sarif_allowed.contains("\"level\": \"warning\""));
    assert!(!sarif_allowed.contains("\"level\": \"error\""));
}
