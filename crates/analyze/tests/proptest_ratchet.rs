//! Property tests of the ratchet: for every rule and any counts, the
//! baseline check accepts at-or-below and rejects any increase — there is
//! no input on which new debt slips through.

// Integration-test crate: unwraps on test data are the assertion.
#![allow(clippy::unwrap_used)]

use std::collections::BTreeMap;

use fpb_analyze::baseline::{check_ratchet, Baseline};
use fpb_analyze::rules::{Rule, Violation};
use proptest::prelude::*;

fn violations(rule: Rule, n: u64) -> Vec<Violation> {
    (0..n)
        .map(|i| Violation {
            rule,
            file: "crates/core/src/x.rs".into(),
            line: i as u32 + 1,
            message: "seeded".into(),
        })
        .collect()
}

fn baseline_of(rule: Rule, allowed: u64) -> Baseline {
    let mut counts = BTreeMap::new();
    counts.insert(rule.name().to_string(), allowed);
    Baseline::from_counts(counts)
}

proptest! {
    #[test]
    fn ratchet_never_accepts_an_increase(
        allowed in 0u64..40,
        excess in 1u64..40,
        rule_idx in 0usize..Rule::ALL.len(),
    ) {
        let rule = Rule::ALL[rule_idx];
        let report = check_ratchet(
            &violations(rule, allowed + excess),
            &baseline_of(rule, allowed),
        );
        prop_assert!(!report.ok(), "{rule}: {} > {allowed} accepted", allowed + excess);
        prop_assert_eq!(report.regressions().count(), 1);
    }

    #[test]
    fn ratchet_accepts_at_or_below(
        allowed in 0u64..40,
        used in 0u64..40,
        rule_idx in 0usize..Rule::ALL.len(),
    ) {
        let rule = Rule::ALL[rule_idx];
        let used = used.min(allowed);
        let report = check_ratchet(&violations(rule, used), &baseline_of(rule, allowed));
        prop_assert!(report.ok());
        prop_assert_eq!(report.regressions().count(), 0);
    }

    #[test]
    fn unlisted_rules_tolerate_zero_only(
        count in 1u64..40,
        rule_idx in 0usize..Rule::ALL.len(),
    ) {
        let rule = Rule::ALL[rule_idx];
        let report = check_ratchet(&violations(rule, count), &Baseline::empty());
        prop_assert!(!report.ok(), "{rule}: {count} violations passed an empty baseline");
    }

    #[test]
    fn tightened_baseline_roundtrips_and_is_exact(
        count in 0u64..40,
        rule_idx in 0usize..Rule::ALL.len(),
    ) {
        let rule = Rule::ALL[rule_idx];
        let vs = violations(rule, count);
        let tightened = check_ratchet(&vs, &Baseline::empty()).tightened_baseline();
        // Exact: the same scan passes, one more violation regresses.
        prop_assert!(check_ratchet(&vs, &tightened).ok());
        let more = violations(rule, count + 1);
        prop_assert!(!check_ratchet(&more, &tightened).ok());
        // And the checked-in TOML form parses back to the same baseline.
        let reparsed = Baseline::parse(&tightened.to_toml()).unwrap();
        prop_assert_eq!(reparsed, tightened);
    }
}
