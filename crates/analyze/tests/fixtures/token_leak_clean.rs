//! Clean twin of `token_leak.rs`: the same acquisition shapes with every
//! grant consumed on every exit path. Must produce zero findings.

pub struct Ledger {
    budget: u64,
}

pub struct Grant(pub u64);

impl Ledger {
    pub fn try_grant_flat(&mut self, want: u64) -> Option<Grant> {
        (want <= self.budget).then(|| Grant(want))
    }

    pub fn take_scratch(&mut self) -> Vec<u64> {
        Vec::new()
    }
}

fn spend(_g: Grant) {}
fn stash(_s: Vec<u64>) {}

pub fn spends_at_end_of_scope(l: &mut Ledger) {
    let g = l.try_grant_flat(4);
    if let Some(grant) = g {
        spend(grant);
    }
}

pub fn consumes_before_the_early_return(l: &mut Ledger, cond: bool) -> Option<Grant> {
    let g = l.try_grant_flat(4);
    if cond {
        return g;
    }
    g
}

pub fn acquires_after_the_fallible_step(
    l: &mut Ledger,
    input: Result<u64, ()>,
) -> Result<u64, ()> {
    let v = input?;
    if let Some(grant) = l.try_grant_flat(v) {
        spend(grant);
    }
    Ok(v)
}

pub fn every_match_arm_consumes(l: &mut Ledger, cond: bool) {
    let g = l.try_grant_flat(4);
    match cond {
        true => {
            if let Some(grant) = g {
                spend(grant);
            }
        }
        false => {
            let _still_held = g;
        }
    }
}

pub fn if_let_header_arm_consumes(l: &mut Ledger) {
    if let Some(g) = l.try_grant_flat(4) {
        spend(g);
    }
}

pub fn scratch_flows_onward(l: &mut Ledger) {
    let s = l.take_scratch();
    stash(s);
}
