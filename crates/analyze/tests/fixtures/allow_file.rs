//! Allow-file fixture: a file-wide directive silences every occurrence of
//! the named rule, so this file expects zero violations.

// fpb-lint: allow-file(hash_order)

use std::collections::HashMap;

pub type Index = HashMap<u64, u64>;

pub fn build() -> HashMap<u64, u64> {
    HashMap::new()
}
