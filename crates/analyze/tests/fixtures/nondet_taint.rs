//! Seeded `nondet_taint` violations: nondeterminism sources on call
//! chains into metrics/report emission. Lexical determinism/hash-order
//! hits are directive-suppressed so each marker pins the taint rule.

pub struct Metrics {
    pub cycles: u64,
}

impl Metrics {
    pub fn render(&self) -> String {
        let tag = worker_tag();
        let buckets = bucket_count();
        let t = elapsed_cycles();
        format!("cycles={} tag={tag} buckets={buckets} t={t}", self.cycles)
    }
}

fn worker_tag() -> String {
    let id = std::thread::current().id(); //~ nondet_taint
    format!("{id:?}")
}

fn bucket_count() -> usize {
    // fpb-lint: allow(hash_order)
    let m = std::collections::HashMap::<u32, u32>::new(); //~ nondet_taint
    m.len()
}

fn elapsed_cycles() -> u64 {
    // fpb-lint: allow(determinism)
    let _t = std::time::Instant::now(); //~ nondet_taint
    0
}

fn unused_clock() -> bool {
    // Not reachable from a metrics/report sink: the source is recorded
    // but taint never fires.
    // fpb-lint: allow(determinism)
    let _t = std::time::SystemTime::now();
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_in_tests_never_count() {
        let _ = std::time::Instant::now();
        let m = Metrics { cycles: 1 };
        assert!(!m.render().is_empty());
    }
}
