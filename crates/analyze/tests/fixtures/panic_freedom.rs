//! Panic-freedom fixture: seeded violations for the lint-engine tests.
//! Never compiled — the `fixtures/` directory is excluded from cargo
//! targets and from `fpb lint`'s own workspace walk. Lines expected to
//! violate carry a trailing tilde marker naming the rule.

pub fn hot_unwrap(x: Option<u8>) -> u8 {
    x.unwrap() //~ panic_freedom
}

pub fn hot_expect(x: Result<u8, ()>) -> u8 {
    x.expect("always ok") //~ panic_freedom
}

pub fn dead_ends(code: u8) -> u8 {
    match code {
        0 => panic!("zero"), //~ panic_freedom
        1 => unreachable!(), //~ panic_freedom
        2 => todo!(), //~ panic_freedom
        3 => unimplemented!(), //~ panic_freedom
        n => n,
    }
}

pub fn not_method_calls() {
    // A binding named `unwrap` is not a call, and a doc string mentioning
    // .unwrap() is not code.
    let unwrap = 1;
    let _ = unwrap;
    let _ = "call .unwrap() for fun and profit";
}

// fpb-lint: allow(panic_freedom) — exercised by the fixture test
pub fn allowed(x: Option<u8>) -> u8 { x.unwrap() }

#[cfg(test)]
mod tests {
    #[test]
    fn exempt_in_tests() {
        Some(1).unwrap();
        panic!("panics are fine in test code");
    }
}
