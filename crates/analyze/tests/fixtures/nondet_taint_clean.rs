//! Clean twin of `nondet_taint.rs`: metrics emission reaches only
//! deterministic helpers (ordered containers, simulated clocks). Must
//! produce zero findings.

pub struct Metrics {
    pub cycles: u64,
}

impl Metrics {
    pub fn render(&self) -> String {
        let tag = worker_tag(3);
        let buckets = bucket_count();
        format!("cycles={} tag={tag} buckets={buckets}", self.cycles)
    }
}

fn worker_tag(slot: usize) -> String {
    format!("w{slot}")
}

fn bucket_count() -> usize {
    let m = std::collections::BTreeMap::<u32, u32>::new();
    m.len()
}
