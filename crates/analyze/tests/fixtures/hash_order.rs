//! Hash-order fixture: randomized-iteration containers in simulation
//! code. Tilde markers name expected hits.

use std::collections::HashMap; //~ hash_order
use std::collections::HashSet; //~ hash_order

pub fn build() -> HashMap<u32, u32> { //~ hash_order
    HashMap::new() //~ hash_order
}

pub fn ordered_is_fine() -> std::collections::BTreeMap<u32, u32> {
    std::collections::BTreeMap::new()
}

#[cfg(test)]
mod tests {
    #[test]
    fn hashes_fine_in_tests() {
        let mut seen = std::collections::HashSet::new();
        assert!(seen.insert(1u32));
    }
}
