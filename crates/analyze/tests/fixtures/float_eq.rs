//! Float-equality fixture: exact `==`/`!=` against float literals.
//! Tilde markers name expected hits.

pub fn eq_right(e: f64) -> bool {
    e == 0.5 //~ float_eq
}

pub fn eq_left(e: f64) -> bool {
    0.25 == e //~ float_eq
}

pub fn ne_right(e: f64) -> bool {
    e != 1.0 //~ float_eq
}

pub fn integers_are_fine(n: u64) -> bool {
    n == 3
}

pub fn comparisons_are_fine(e: f64) -> bool {
    e <= 0.5 && e >= 0.25
}

#[cfg(test)]
mod tests {
    #[test]
    fn exact_expectations_fine_in_tests() {
        assert!(super::eq_right(0.5));
        let x = 0.5f64;
        assert!(x == 0.5);
    }
}
