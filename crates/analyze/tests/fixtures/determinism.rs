//! Determinism fixture: wall-clock and environment reads that would break
//! the serial-vs-parallel bit-equality gate. Tilde markers name expected hits.

use std::time::Instant; //~ determinism
use std::time::SystemTime; //~ determinism

pub fn wall_elapsed() -> f64 {
    let t0 = Instant::now(); //~ determinism
    t0.elapsed().as_secs_f64()
}

pub fn wall_epoch() -> SystemTime { //~ determinism
    SystemTime::now() //~ determinism
}

pub fn jobs_from_env() -> Option<String> {
    std::env::var("FPB_JOBS").ok() //~ determinism
}

pub fn compile_time_env_is_fine() -> &'static str {
    env!("CARGO_PKG_NAME")
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_a_test_is_fine() {
        let t0 = std::time::Instant::now();
        assert!(t0.elapsed().as_nanos() < u128::MAX);
    }
}
