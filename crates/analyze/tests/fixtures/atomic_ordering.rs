//! Seeded `atomic_ordering` violations: `Ordering::Relaxed` on a
//! coordination atomic needs an adjacent `// ORDER:` justification
//! within the three lines above the use.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn unjustified_load(cursor: &AtomicUsize) -> usize {
    cursor.load(Ordering::Relaxed) //~ atomic_ordering
}

pub fn unjustified_store(cursor: &AtomicUsize) {
    cursor.store(0, Ordering::Relaxed); //~ atomic_ordering
}

pub fn justification_too_far_away(cursor: &AtomicUsize) -> usize {
    // ORDER: this proof is stranded well above the use, outside the
    // three-line adjacency window, so the rule still fires.
    let _ = cursor;
    let _ = 0;
    let _ = 1;
    let _ = 2;
    cursor.load(Ordering::Relaxed) //~ atomic_ordering
}

pub fn justified_load(cursor: &AtomicUsize) -> usize {
    // ORDER: pure claim counter; no data is published through it.
    cursor.load(Ordering::Relaxed)
}

pub fn stronger_orderings_need_no_comment(cursor: &AtomicUsize) -> usize {
    cursor.load(Ordering::Acquire)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relaxed_in_tests_is_exempt() {
        let c = AtomicUsize::new(0);
        assert_eq!(c.load(Ordering::Relaxed), 0);
    }
}
