//! Truncating-cast fixture: narrowing `as` casts on power-accounting
//! values. Tilde markers name expected hits.

pub fn tokens_low_word(tokens: u64) -> u32 {
    tokens as u32 //~ truncating_cast
}

pub fn cycle_low_byte(cycle: u64) -> u8 {
    cycle as u8 //~ truncating_cast
}

pub fn energy_packed(energy_units: u64) -> i16 {
    energy_units as i16 //~ truncating_cast
}

pub fn unrelated_narrowing(x: u64) -> u32 {
    // No accounting term anywhere here, so the rule stays quiet.
    x as u32
}

pub fn widening_is_fine(tokens: u32) -> u64 {
    tokens as u64
}

#[cfg(test)]
mod tests {
    #[test]
    fn narrowing_fine_in_tests() {
        let tokens = 7u64;
        assert_eq!(tokens as u32, 7);
    }
}
