//! Clean twin of `panic_reachability.rs`: the engine entry points reach
//! only total code; the one panic site lives behind a directive-justified
//! wrapper that `run`/`step` never call. Must produce zero findings.

pub struct System {
    depth: u32,
}

pub enum SimError {
    Deadlock,
}

impl System {
    pub fn run(&mut self) -> Result<(), SimError> {
        self.advance()
    }

    pub fn step(&mut self) -> bool {
        self.depth = self.depth.saturating_sub(1);
        self.depth > 0
    }

    fn advance(&mut self) -> Result<(), SimError> {
        if self.depth == 0 {
            return Err(SimError::Deadlock);
        }
        self.depth -= 1;
        Ok(())
    }
}

fn abort_wrapper(r: Result<(), SimError>) {
    if r.is_err() {
        // Unreachable from run/step; the lexical rule is directive-
        // suppressed and the reachability rule never sees a chain.
        // fpb-lint: allow(panic_freedom, panic_reachability)
        panic!("deadlock");
    }
}
