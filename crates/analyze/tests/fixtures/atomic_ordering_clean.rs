//! Clean twin of `atomic_ordering.rs`: every `Ordering::Relaxed` use
//! carries an adjacent `// ORDER:` proof. Must produce zero findings.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn claim_next(cursor: &AtomicUsize) -> usize {
    // ORDER: the cursor only hands out unique indices; results
    // synchronize elsewhere, so Relaxed cannot reorder anything.
    cursor.fetch_add(1, Ordering::Relaxed)
}

pub fn observe(cursor: &AtomicUsize) -> usize {
    // ORDER: monotonic progress probe, tolerant of stale reads.
    cursor.load(Ordering::Relaxed)
}

pub fn publish(flag: &AtomicUsize) {
    flag.store(1, Ordering::Release);
}
