//! Unsafe-hygiene fixture: `unsafe` with and without a `// SAFETY:`
//! justification. Applies in test code too. Tilde markers name expected hits.

pub fn undocumented(p: *const u8) -> u8 {
    unsafe { *p } //~ unsafe_no_safety
}

pub fn documented(p: *const u8) -> u8 {
    // SAFETY: the caller guarantees `p` is valid for reads.
    unsafe { *p }
}

#[cfg(test)]
mod tests {
    #[test]
    fn still_checked_in_tests() {
        let x = 1u8;
        let _ = unsafe { *(&x as *const u8) }; //~ unsafe_no_safety
    }
}
