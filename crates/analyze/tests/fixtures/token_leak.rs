//! Seeded `token_leak` violations: every power-token acquisition must be
//! consumed (spent, returned, or propagated) on every exit path. Each
//! marker pins the acquisition line the rule reports.

pub struct Ledger {
    budget: u64,
}

pub struct Grant(pub u64);

impl Ledger {
    pub fn try_grant_flat(&mut self, want: u64) -> Option<Grant> {
        (want <= self.budget).then(|| Grant(want))
    }

    pub fn take_scratch(&mut self) -> Vec<u64> {
        Vec::new()
    }
}

fn spend(_g: Grant) {}

pub fn drops_at_end_of_scope(l: &mut Ledger) {
    let g = l.try_grant_flat(4); //~ token_leak
    let _unrelated = 1 + 1;
}

pub fn leaks_on_early_return(l: &mut Ledger, cond: bool) {
    let g = l.try_grant_flat(4); //~ token_leak
    if cond {
        return;
    }
    if let Some(grant) = g {
        spend(grant);
    }
}

pub fn leaks_on_propagation(l: &mut Ledger, input: Result<u64, ()>) -> Result<u64, ()> {
    let g = l.try_grant_flat(4); //~ token_leak
    let v = input?;
    if let Some(grant) = g {
        spend(grant);
    }
    Ok(v)
}

pub fn discards_with_let_underscore(l: &mut Ledger) {
    let _ = l.try_grant_flat(4); //~ token_leak
}

pub fn leaks_in_one_match_arm(l: &mut Ledger, cond: bool) {
    let g = l.try_grant_flat(4); //~ token_leak
    match cond {
        true => drop(g),
        false => {}
    }
}

pub fn leaks_from_if_let_header(l: &mut Ledger) {
    if let Some(g) = l.try_grant_flat(4) { //~ token_leak
        let _size = 1;
    }
}

pub fn scratch_is_never_returned(l: &mut Ledger) {
    let s = l.take_scratch(); //~ token_leak
    let _n = 2;
}

// Consuming shapes below must stay silent.

pub fn spends_its_grant(l: &mut Ledger) {
    if let Some(g) = l.try_grant_flat(4) {
        spend(g);
    }
}

pub fn returns_the_grant(l: &mut Ledger) -> Option<Grant> {
    l.try_grant_flat(4)
}

pub fn consumes_before_every_exit(l: &mut Ledger, cond: bool) -> Option<Grant> {
    let g = l.try_grant_flat(4);
    if cond {
        return g;
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_is_exempt() {
        let mut l = Ledger { budget: 8 };
        let _g = l.try_grant_flat(4);
    }
}
