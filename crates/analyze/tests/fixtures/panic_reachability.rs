//! Seeded `panic_reachability` violations: panic sites on call chains
//! from the engine's public stepping entry points (`System::run` /
//! `System::step`). The lexical `panic_freedom` hits are suppressed with
//! directives so each marked line pins the reachability rule alone.

pub struct System {
    depth: u32,
}

impl System {
    pub fn run(&mut self) {
        self.advance();
    }

    pub fn step(&mut self) -> bool {
        self.depth = self.checked_step();
        self.depth > 0
    }

    fn advance(&mut self) {
        self.commit_round();
    }

    fn commit_round(&mut self) {
        if self.depth == 0 {
            // fpb-lint: allow(panic_freedom)
            panic!("scheduling deadlock"); //~ panic_reachability
        }
        self.depth -= 1;
    }

    fn checked_step(&mut self) -> u32 {
        // fpb-lint: allow(panic_freedom)
        self.depth.checked_sub(1).expect("depth underflow") //~ panic_reachability
    }
}

fn orphan_helper() {
    // Not reachable from run/step, so panic_reachability stays silent
    // even though the site is recorded.
    // fpb-lint: allow(panic_freedom)
    unreachable!("never called from the engine");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panics_in_tests_never_count() {
        let mut s = System { depth: 1 };
        assert!(!s.step());
    }
}
