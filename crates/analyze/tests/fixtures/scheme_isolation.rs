//! Scheme-isolation fixture: scheme policy fields may only be mutated
//! inside the scheme module. Tilde markers name expected hits.
//!
//! Scanned with crate key `sim` and a path outside `src/scheme/`, as if
//! an engine stage reached into the setup directly.

pub fn flip_boosts(setup: &mut SchemeSetup) {
    setup.boosts.cancellation = true; //~ scheme_isolation
    setup.boosts.pausing = false; //~ scheme_isolation
}

pub fn retune_termination(setup: &mut SchemeSetup) {
    setup.termination.truncation_ecc = Some(8); //~ scheme_isolation
    setup.termination.preset = true; //~ scheme_isolation
}

pub fn fake_feedback(setup: &mut SchemeSetup) {
    setup.controller.pre_write_read = false; //~ scheme_isolation
    setup.controller.worst_case_hold = true; //~ scheme_isolation
}

pub fn reads_are_fine(setup: &SchemeSetup) -> bool {
    setup.boosts.cancellation && !setup.termination.preset
}

pub fn comparisons_are_fine(setup: &SchemeSetup) -> bool {
    setup.controller.pre_write_read == setup.boosts.pausing
        && setup.termination.truncation_ecc != None
}

pub fn unrelated_fields_are_fine(bank: &mut Bank) {
    bank.pausing_count = 3; // not a field access chain ending in a knob
    bank.stalls = 0;
}

pub fn struct_literals_are_fine() -> ReadBoosts {
    ReadBoosts {
        cancellation: true,
        pausing: true,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_poke_policy_directly() {
        let mut setup = SchemeSetup::default();
        setup.boosts.cancellation = true;
        setup.termination.preset = true;
    }
}
