//! Property tests of semantic-analysis determinism: the report must be
//! byte-identical no matter what order files are visited in, and
//! identical again when per-file facts take the cache round trip instead
//! of fresh extraction. CI leans on this — it diffs cold and warm runs.

// Integration-test crate: unwraps on test data are the assertion.
#![allow(clippy::unwrap_used)]

use std::path::Path;

use fpb_analyze::baseline::{check_ratchet, Baseline};
use fpb_analyze::report::render_json;
use fpb_analyze::sarif::render_sarif;
use fpb_analyze::semantic::{self, FileFacts};
use proptest::prelude::*;

/// The semantic fixture corpus, with crate keys matching the harness.
const CORPUS: &[(&str, &str)] = &[
    ("token_leak.rs", "core"),
    ("token_leak_clean.rs", "core"),
    ("panic_reachability.rs", "sim"),
    ("panic_reachability_clean.rs", "sim"),
    ("nondet_taint.rs", "sim"),
    ("nondet_taint_clean.rs", "sim"),
    ("atomic_ordering.rs", "sim"),
    ("atomic_ordering_clean.rs", "sim"),
];

fn corpus_facts() -> Vec<FileFacts> {
    CORPUS
        .iter()
        .map(|(name, key)| {
            let path = Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("tests/fixtures")
                .join(name);
            let src = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
            semantic::file_facts(name, key, &src)
        })
        .collect()
}

fn rendered(facts: &[FileFacts]) -> (String, String) {
    let violations = semantic::analyze(facts);
    let report = check_ratchet(&violations, &Baseline::empty());
    (render_json(&report, facts.len()), render_sarif(&report))
}

/// A seed-determined permutation of `0..n` (Fisher–Yates over an LCG),
/// so proptest explores visit orders without a shuffle combinator.
fn permutation(n: usize, mut seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        order.swap(i, (seed >> 33) as usize % (i + 1));
    }
    order
}

proptest! {
    #[test]
    fn reports_are_byte_identical_under_file_order_shuffles(seed in any::<u64>()) {
        let facts = corpus_facts();
        let order = permutation(facts.len(), seed);
        let (json_ref, sarif_ref) = rendered(&facts);
        let shuffled: Vec<FileFacts> =
            order.iter().map(|&i| facts[i].clone()).collect();
        let (json, sarif) = rendered(&shuffled);
        prop_assert_eq!(json, json_ref, "JSON diverged for order {:?}", order);
        prop_assert_eq!(sarif, sarif_ref, "SARIF diverged for order {:?}", order);
    }

    #[test]
    fn cache_round_trip_preserves_the_report(
        seed in any::<u64>(),
        salt in 0u64..u64::MAX,
    ) {
        let facts = corpus_facts();
        let order = permutation(facts.len(), seed);
        let (json_ref, sarif_ref) = rendered(&facts);
        let shuffled: Vec<FileFacts> =
            order.iter().map(|&i| facts[i].clone()).collect();
        let path = std::env::temp_dir()
            .join(format!("fpb-analyze-determinism-{salt:016x}.cache"));
        fpb_analyze::cache::save(&path, &shuffled).unwrap();
        let loaded = fpb_analyze::cache::load(&path).expect("cache parses");
        let _ = std::fs::remove_file(&path);
        // The cache keys by rel_path, so the loaded set is order-free.
        let round_tripped: Vec<FileFacts> = loaded.into_values().collect();
        let (json, sarif) = rendered(&round_tripped);
        prop_assert_eq!(json, json_ref);
        prop_assert_eq!(sarif, sarif_ref);
    }
}
