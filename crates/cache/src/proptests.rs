//! Property-based tests: the set-associative cache against a brute-force
//! reference model.

use proptest::prelude::*;

use crate::set_assoc::SetAssocCache;

/// Reference model: a plain list of (line, dirty, last_use) with the same
/// policy, checked against the real cache access by access.
struct RefCache {
    line_bytes: u64,
    sets: u64,
    ways: usize,
    entries: Vec<(u64, bool, u64)>, // (line, dirty, last_use)
    clock: u64,
}

impl RefCache {
    fn new(capacity: u64, line_bytes: u64, ways: usize) -> Self {
        RefCache {
            line_bytes,
            sets: capacity / (line_bytes * ways as u64),
            ways,
            entries: Vec::new(),
            clock: 0,
        }
    }

    /// Returns (hit, victim) like the real cache.
    fn access(&mut self, addr: u64, write: bool) -> (bool, Option<(u64, bool)>) {
        self.clock += 1;
        let line = addr / self.line_bytes;
        let set = line % self.sets;
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|(l, _, _)| *l == line)
        {
            e.1 |= write;
            e.2 = self.clock;
            return (true, None);
        }
        let in_set: Vec<usize> = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, (l, _, _))| l % self.sets == set)
            .map(|(i, _)| i)
            .collect();
        let victim = if in_set.len() >= self.ways {
            let &lru = in_set
                .iter()
                .min_by_key(|&&i| self.entries[i].2)
                .expect("nonempty");
            let (l, d, _) = self.entries.swap_remove(lru);
            Some((l * self.line_bytes, d))
        } else {
            None
        };
        self.entries.push((line, write, self.clock));
        (false, victim)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The cache agrees with the reference model on every access outcome
    /// and every victim, over arbitrary access sequences.
    #[test]
    fn matches_reference_model(
        ops in prop::collection::vec((0u64..4096, any::<bool>()), 1..300),
        ways in 1usize..5,
    ) {
        let capacity = 64 * ways as u64 * 8; // 8 sets
        let mut real = SetAssocCache::new(capacity, 64, ways).expect("cache");
        let mut reference = RefCache::new(capacity, 64, ways);
        for (addr, write) in ops {
            let r = real.access(addr, write);
            let (hit, victim) = reference.access(addr, write);
            prop_assert_eq!(r.hit, hit, "hit mismatch at {:#x}", addr);
            let rv = r.victim.map(|v| (v.addr, v.dirty));
            prop_assert_eq!(rv, victim, "victim mismatch at {:#x}", addr);
        }
        prop_assert_eq!(real.resident_lines(), reference.entries.len());
    }

    /// Occupancy never exceeds capacity and probe agrees with access
    /// history.
    #[test]
    fn occupancy_bounded(
        ops in prop::collection::vec(0u64..100_000, 1..500),
    ) {
        let mut c = SetAssocCache::new(4096, 64, 4).expect("cache");
        for addr in &ops {
            let _ = c.access(*addr, false);
            prop_assert!(c.resident_lines() <= 64);
        }
        // The most recent access is always resident.
        let last = *ops.last().expect("nonempty");
        prop_assert!(c.probe(last));
    }
}
