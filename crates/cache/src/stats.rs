//! Cache access accounting.

/// Hit/miss/eviction counters for one cache.
///
/// # Examples
///
/// ```
/// use fpb_cache::CacheStats;
///
/// let mut s = CacheStats::default();
/// s.record_hit();
/// s.record_miss();
/// s.record_miss();
/// assert_eq!(s.accesses(), 3);
/// assert!((s.miss_rate() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    hits: u64,
    misses: u64,
    evictions: u64,
    dirty_evictions: u64,
}

impl CacheStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        CacheStats::default()
    }

    /// Records a hit.
    pub fn record_hit(&mut self) {
        self.hits += 1;
    }

    /// Records a miss.
    pub fn record_miss(&mut self) {
        self.misses += 1;
    }

    /// Records an eviction; `dirty` if the victim required a write-back.
    pub fn record_eviction(&mut self, dirty: bool) {
        self.evictions += 1;
        if dirty {
            self.dirty_evictions += 1;
        }
    }

    /// Total hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total evictions (clean + dirty).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Evictions that produced a write-back.
    pub fn dirty_evictions(&self) -> u64 {
        self.dirty_evictions
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss rate in `[0, 1]`; zero when no accesses were made.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = CacheStats::new();
        for _ in 0..7 {
            s.record_hit();
        }
        for _ in 0..3 {
            s.record_miss();
        }
        s.record_eviction(true);
        s.record_eviction(false);
        assert_eq!(s.hits(), 7);
        assert_eq!(s.misses(), 3);
        assert_eq!(s.accesses(), 10);
        assert_eq!(s.evictions(), 2);
        assert_eq!(s.dirty_evictions(), 1);
        assert!((s.miss_rate() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_miss_rate() {
        assert_eq!(CacheStats::new().miss_rate(), 0.0);
    }
}
