//! Set-associative write-back cache hierarchy substrate.
//!
//! The FPB paper simulates the entire on-chip hierarchy — private L1 and L2
//! SRAM caches plus a private 32 MB/core off-chip DRAM L3 — in front of the
//! MLC PCM main memory. This crate provides that substrate:
//!
//! * [`set_assoc`] — a generic set-associative, write-back, write-allocate
//!   cache with true-LRU replacement.
//! * [`hierarchy`] — a per-core L1→L2→L3 composition that turns a core's
//!   byte-address access stream into PCM-level line fills and dirty
//!   write-backs.
//! * [`stats`] — hit/miss/eviction accounting.
//!
//! # Examples
//!
//! ```
//! use fpb_cache::{CoreCaches, HitLevel};
//! use fpb_types::CacheHierarchyConfig;
//!
//! let mut caches = CoreCaches::new(&CacheHierarchyConfig::default()).unwrap();
//! let out = caches.access(0x1000, false);
//! assert_eq!(out.level, HitLevel::Memory); // cold miss goes to PCM
//! assert_eq!(out.pcm_fills.len(), 1);
//!
//! let out = caches.access(0x1000, true); // now hot in L1
//! assert_eq!(out.level, HitLevel::L1);
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod hierarchy;
pub mod set_assoc;
pub mod stats;

#[cfg(test)]
mod proptests;

pub use hierarchy::{CoreCaches, HierarchyOutcome, HitLevel};
pub use set_assoc::{AccessResult, SetAssocCache, Victim};
pub use stats::CacheStats;
