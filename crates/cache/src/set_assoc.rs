//! A generic set-associative, write-back, write-allocate cache.

use crate::stats::CacheStats;
use fpb_types::ConfigError;

/// A line evicted to make room for an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// Byte address of the first byte of the evicted line.
    pub addr: u64,
    /// True if the line was modified and must be written back.
    pub dirty: bool,
}

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// True if the line was already present.
    pub hit: bool,
    /// Victim evicted by the allocation this access performed (misses
    /// allocate; hits never evict).
    pub victim: Option<Victim>,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    tag: u64,
    dirty: bool,
    last_use: u64,
    valid: bool,
}

const INVALID: Entry = Entry {
    tag: 0,
    dirty: false,
    last_use: 0,
    valid: false,
};

/// A set-associative cache with true-LRU replacement, write-back and
/// write-allocate policies.
///
/// Addresses are byte addresses; the cache maps them to lines internally.
///
/// # Examples
///
/// ```
/// use fpb_cache::SetAssocCache;
///
/// // 1 KiB cache, 64 B lines, 4-way: 4 sets.
/// let mut c = SetAssocCache::new(1024, 64, 4).unwrap();
/// assert!(!c.access(0, false).hit);
/// assert!(c.access(32, false).hit);       // same line
/// assert!(!c.access(4096, true).hit);     // different set? no: set 0 too
/// assert_eq!(c.stats().misses(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    line_bytes: u64,
    sets: u64,
    ways: usize,
    entries: Vec<Entry>,
    clock: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates a cache of `capacity_bytes` with the given line size and
    /// associativity.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the line size is not a power of two, the
    /// capacity is not a multiple of `line_bytes × ways`, or any parameter
    /// is zero.
    pub fn new(capacity_bytes: u64, line_bytes: u64, ways: usize) -> Result<Self, ConfigError> {
        if line_bytes == 0 || !line_bytes.is_power_of_two() {
            return Err(ConfigError::new(
                "cache.line_bytes",
                "must be a nonzero power of two",
            ));
        }
        if ways == 0 {
            return Err(ConfigError::new("cache.ways", "must be nonzero"));
        }
        if capacity_bytes == 0 || !capacity_bytes.is_multiple_of(line_bytes * ways as u64) {
            return Err(ConfigError::new(
                "cache.capacity_bytes",
                "must be a nonzero multiple of line_bytes * ways",
            ));
        }
        let sets = capacity_bytes / (line_bytes * ways as u64);
        Ok(SetAssocCache {
            line_bytes,
            sets,
            ways,
            entries: vec![INVALID; (sets as usize) * ways],
            clock: 0,
            stats: CacheStats::new(),
        })
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Access statistics so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn line_of(&self, byte_addr: u64) -> u64 {
        byte_addr / self.line_bytes
    }

    fn set_range(&self, line: u64) -> std::ops::Range<usize> {
        let set = (line % self.sets) as usize;
        set * self.ways..(set + 1) * self.ways
    }

    /// Accesses `byte_addr`; `write` marks the line dirty. Misses allocate
    /// (write-allocate) and may evict an LRU victim.
    pub fn access(&mut self, byte_addr: u64, write: bool) -> AccessResult {
        self.clock += 1;
        let line = self.line_of(byte_addr);
        let range = self.set_range(line);
        let clock = self.clock;

        // Hit path.
        for e in &mut self.entries[range.clone()] {
            if e.valid && e.tag == line {
                e.last_use = clock;
                e.dirty |= write;
                self.stats.record_hit();
                return AccessResult {
                    hit: true,
                    victim: None,
                };
            }
        }

        // Miss: find an invalid way or the LRU victim.
        self.stats.record_miss();
        let set = &mut self.entries[range];
        let slot = set
            .iter()
            .position(|e| !e.valid)
            .unwrap_or_else(|| {
                set.iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.last_use)
                    .map(|(i, _)| i)
                    .expect("set is never empty")
            });
        let victim = if set[slot].valid {
            let v = Victim {
                addr: set[slot].tag * self.line_bytes,
                dirty: set[slot].dirty,
            };
            self.stats.record_eviction(v.dirty);
            Some(v)
        } else {
            None
        };
        set[slot] = Entry {
            tag: line,
            dirty: write,
            last_use: clock,
            valid: true,
        };
        AccessResult { hit: false, victim }
    }

    /// True if the line containing `byte_addr` is present (no LRU update).
    pub fn probe(&self, byte_addr: u64) -> bool {
        let line = self.line_of(byte_addr);
        self.entries[self.set_range(line)]
            .iter()
            .any(|e| e.valid && e.tag == line)
    }

    /// Marks a resident line dirty without an access (used when a lower
    /// level pushes a write-back into this cache). Returns false if the
    /// line is absent.
    pub fn mark_dirty(&mut self, byte_addr: u64) -> bool {
        let line = self.line_of(byte_addr);
        let range = self.set_range(line);
        for e in &mut self.entries[range] {
            if e.valid && e.tag == line {
                e.dirty = true;
                return true;
            }
        }
        false
    }

    /// Invalidates the line containing `byte_addr`, returning its victim
    /// record if it was present.
    pub fn invalidate(&mut self, byte_addr: u64) -> Option<Victim> {
        let line = self.line_of(byte_addr);
        let range = self.set_range(line);
        let line_bytes = self.line_bytes;
        for e in &mut self.entries[range] {
            if e.valid && e.tag == line {
                let v = Victim {
                    addr: e.tag * line_bytes,
                    dirty: e.dirty,
                };
                *e = INVALID;
                return Some(v);
            }
        }
        None
    }

    /// Number of valid lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        // 2 sets, 2 ways, 64 B lines = 256 B.
        SetAssocCache::new(256, 64, 2).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(SetAssocCache::new(256, 60, 2).is_err()); // non-pow2 line
        assert!(SetAssocCache::new(100, 64, 2).is_err()); // not multiple
        assert!(SetAssocCache::new(256, 64, 0).is_err());
        assert!(SetAssocCache::new(0, 64, 2).is_err());
        let c = SetAssocCache::new(1 << 20, 64, 4).unwrap();
        assert_eq!(c.sets(), (1 << 20) / (64 * 4));
    }

    #[test]
    fn hit_after_fill() {
        let mut c = small();
        assert!(!c.access(0, false).hit);
        assert!(c.access(63, false).hit); // same line
        assert!(!c.access(64, false).hit); // next line, set 1
        assert_eq!(c.stats().hits(), 1);
        assert_eq!(c.stats().misses(), 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Set 0 holds lines 0, 2, 4, ... (line % 2 == 0).
        c.access(0, false); // line 0
        c.access(2 * 64, false); // line 2 — set 0 now full
        c.access(0, false); // touch line 0 (line 2 is now LRU)
        let r = c.access(4 * 64, false); // line 4 evicts line 2
        let v = r.victim.unwrap();
        assert_eq!(v.addr, 2 * 64);
        assert!(!v.dirty);
        assert!(c.probe(0));
        assert!(!c.probe(2 * 64));
    }

    #[test]
    fn writeback_only_for_dirty_victims() {
        let mut c = small();
        c.access(0, true); // dirty line 0
        c.access(2 * 64, false); // clean line 2
        let r = c.access(4 * 64, false); // evicts line 0 (LRU)
        assert_eq!(
            r.victim,
            Some(Victim {
                addr: 0,
                dirty: true
            })
        );
        let r = c.access(6 * 64, false); // evicts line 2, clean
        assert!(!r.victim.unwrap().dirty);
        assert_eq!(c.stats().dirty_evictions(), 1);
    }

    #[test]
    fn write_hit_dirties_line() {
        let mut c = small();
        c.access(0, false);
        c.access(0, true); // dirty it via a write hit
        c.access(2 * 64, false);
        c.access(4 * 64, false); // evict line 0
        assert_eq!(c.stats().dirty_evictions(), 1);
    }

    #[test]
    fn mark_dirty_and_invalidate() {
        let mut c = small();
        c.access(0, false);
        assert!(c.mark_dirty(0));
        assert!(!c.mark_dirty(64)); // absent
        let v = c.invalidate(0).unwrap();
        assert!(v.dirty);
        assert!(c.invalidate(0).is_none());
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn distinct_sets_do_not_interfere() {
        let mut c = small();
        // Fill set 0 beyond capacity; set 1 lines must stay resident.
        c.access(64, false); // set 1
        for i in 0..10u64 {
            c.access(i * 2 * 64, false); // all set 0
        }
        assert!(c.probe(64));
    }

    #[test]
    fn working_set_within_capacity_never_misses_twice() {
        let mut c = SetAssocCache::new(8192, 64, 4).unwrap();
        let lines = 8192 / 64;
        for i in 0..lines {
            c.access(i * 64, false);
        }
        let misses_before = c.stats().misses();
        for round in 0..5 {
            for i in 0..lines {
                assert!(c.access(i * 64, false).hit, "round {round} line {i}");
            }
        }
        assert_eq!(c.stats().misses(), misses_before);
    }

    #[test]
    fn resident_lines_bounded_by_capacity() {
        let mut c = small();
        for i in 0..100 {
            c.access(i * 64, i % 3 == 0);
        }
        assert!(c.resident_lines() <= 4);
    }
}
