//! Per-core cache hierarchy: L1 → L2 → DRAM L3 → PCM.

use crate::set_assoc::SetAssocCache;
use fpb_types::{CacheHierarchyConfig, ConfigError};

/// Which level serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HitLevel {
    /// Hit in the private L1.
    L1,
    /// Hit in the private L2.
    L2,
    /// Hit in the private off-chip DRAM L3.
    L3,
    /// Missed everywhere; serviced by PCM main memory.
    Memory,
}

/// Outcome of pushing one core access through the hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyOutcome {
    /// Deepest level that had to service the access.
    pub level: HitLevel,
    /// PCM line indices that must be read (demand fill). At most one per
    /// access in this model.
    pub pcm_fills: Vec<u64>,
    /// PCM line indices that must be written (dirty L3 evictions).
    pub pcm_writebacks: Vec<u64>,
}

/// The private cache hierarchy of one core.
///
/// Modeling notes (documented substitutions from DESIGN.md):
///
/// * Write-backs allocate in the next level without a fill read — the L3
///   allocates dirty lines directly, so write-back traffic does not inflate
///   PCM read traffic. Demand misses do produce a PCM fill.
/// * All caches are write-back, write-allocate, true-LRU.
///
/// # Examples
///
/// ```
/// use fpb_cache::{CoreCaches, HitLevel};
/// use fpb_types::CacheHierarchyConfig;
///
/// let mut c = CoreCaches::new(&CacheHierarchyConfig::default()).unwrap();
/// assert_eq!(c.access(64, true).level, HitLevel::Memory);
/// assert_eq!(c.access(64, false).level, HitLevel::L1);
/// ```
#[derive(Debug, Clone)]
pub struct CoreCaches {
    l1: SetAssocCache,
    l2: SetAssocCache,
    l3: SetAssocCache,
    l3_line_bytes: u64,
}

impl CoreCaches {
    /// Builds the three-level hierarchy from the shared configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any level's geometry is invalid (see
    /// [`SetAssocCache::new`]).
    pub fn new(cfg: &CacheHierarchyConfig) -> Result<Self, ConfigError> {
        let l1 = SetAssocCache::new(
            cfg.l1_kib as u64 * 1024,
            cfg.l12_line_bytes as u64,
            cfg.l1_ways as usize,
        )?;
        let l2 = SetAssocCache::new(
            cfg.l2_kib as u64 * 1024,
            cfg.l12_line_bytes as u64,
            cfg.l2_ways as usize,
        )?;
        let l3 = SetAssocCache::new(
            cfg.l3_mib_per_core as u64 * 1024 * 1024,
            cfg.l3_line_bytes as u64,
            cfg.l3_ways as usize,
        )?;
        Ok(CoreCaches {
            l1,
            l2,
            l3,
            l3_line_bytes: cfg.l3_line_bytes as u64,
        })
    }

    /// Pushes one load (`write = false`) or store (`write = true`) at
    /// `byte_addr` through the hierarchy.
    pub fn access(&mut self, byte_addr: u64, write: bool) -> HierarchyOutcome {
        let mut out = HierarchyOutcome {
            level: HitLevel::L1,
            pcm_fills: Vec::new(),
            pcm_writebacks: Vec::new(),
        };

        let r1 = self.l1.access(byte_addr, write);
        if !r1.hit {
            let r2 = self.l2.access(byte_addr, false);
            if !r2.hit {
                let r3 = self.l3.access(byte_addr, false);
                if !r3.hit {
                    out.level = HitLevel::Memory;
                    out.pcm_fills.push(byte_addr / self.l3_line_bytes);
                } else {
                    out.level = HitLevel::L3;
                }
                if let Some(v3) = r3.victim {
                    if v3.dirty {
                        out.pcm_writebacks.push(v3.addr / self.l3_line_bytes);
                    }
                }
            } else {
                out.level = HitLevel::L2;
            }
            if let Some(v2) = r2.victim {
                if v2.dirty {
                    self.writeback_into_l3(v2.addr, &mut out);
                }
            }
        }
        if let Some(v1) = r1.victim {
            if v1.dirty {
                self.writeback_into_l2(v1.addr, &mut out);
            }
        }
        out
    }

    fn writeback_into_l2(&mut self, addr: u64, out: &mut HierarchyOutcome) {
        if self.l2.mark_dirty(addr) {
            return;
        }
        // Allocate the write-back without a fill (victim-buffer semantics).
        let r = self.l2.access(addr, true);
        if let Some(v) = r.victim {
            if v.dirty {
                self.writeback_into_l3(v.addr, out);
            }
        }
    }

    fn writeback_into_l3(&mut self, addr: u64, out: &mut HierarchyOutcome) {
        if self.l3.mark_dirty(addr) {
            return;
        }
        let r = self.l3.access(addr, true);
        if let Some(v) = r.victim {
            if v.dirty {
                out.pcm_writebacks.push(v.addr / self.l3_line_bytes);
            }
        }
    }

    /// L1 statistics.
    pub fn l1_stats(&self) -> &crate::CacheStats {
        self.l1.stats()
    }

    /// L2 statistics.
    pub fn l2_stats(&self) -> &crate::CacheStats {
        self.l2.stats()
    }

    /// L3 (LLC) statistics.
    pub fn l3_stats(&self) -> &crate::CacheStats {
        self.l3.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> CacheHierarchyConfig {
        CacheHierarchyConfig {
            l1_kib: 1,
            l1_ways: 2,
            l12_line_bytes: 64,
            l1_hit_cycles: 2,
            l2_kib: 4,
            l2_ways: 2,
            l2_hit_cycles: 21,
            l3_mib_per_core: 1,
            l3_ways: 4,
            l3_line_bytes: 256,
            l3_hit_cycles: 200,
            cpu_to_l3_cycles: 64,
        }
    }

    #[test]
    fn cold_miss_reaches_memory() {
        let mut c = CoreCaches::new(&tiny_cfg()).unwrap();
        let out = c.access(0x4000, false);
        assert_eq!(out.level, HitLevel::Memory);
        assert_eq!(out.pcm_fills, vec![0x4000 / 256]);
        assert!(out.pcm_writebacks.is_empty());
    }

    #[test]
    fn levels_hit_in_order() {
        let mut c = CoreCaches::new(&tiny_cfg()).unwrap();
        c.access(0, false); // fill all levels
        assert_eq!(c.access(0, false).level, HitLevel::L1);

        // Push line 0 out of tiny L1 (1 KiB / 64 B / 2-way = 8 sets; lines
        // that map to set 0 are multiples of 8 lines = 512 bytes).
        c.access(512, false);
        c.access(1024, false);
        // Line 0 evicted from L1 but still in L2.
        assert_eq!(c.access(0, false).level, HitLevel::L2);
    }

    #[test]
    fn l3_hit_after_l2_eviction() {
        let mut c = CoreCaches::new(&tiny_cfg()).unwrap();
        c.access(0, false);
        // Evict line 0 from both L1 and L2 (L2: 4 KiB / 64 / 2-way = 32
        // sets → same set every 32 lines = 2048 bytes).
        for i in 1..=4u64 {
            c.access(i * 2048, false);
        }
        let out = c.access(0, false);
        assert_eq!(out.level, HitLevel::L3);
    }

    #[test]
    fn dirty_l3_eviction_writes_to_pcm() {
        let mut c = CoreCaches::new(&tiny_cfg()).unwrap();
        let cfg = tiny_cfg();
        // L3: 1 MiB / 256 B / 4-way = 1024 sets; same set every 1024 lines.
        let stride = 1024 * cfg.l3_line_bytes as u64;
        // Dirty a line all the way down via write-back cascades: write it,
        // then force it down the hierarchy by thrashing L1/L2 with reads
        // that share its sets.
        c.access(0, true);
        for i in 1..200u64 {
            c.access(i * 512, false); // cycles L1 set 0 and various L2 sets
        }
        // Line 0's dirty data should now live in L3; evict its L3 set.
        let mut wrote = Vec::new();
        for i in 1..=4u64 {
            let out = c.access(i * stride, false);
            wrote.extend(out.pcm_writebacks);
        }
        assert!(wrote.contains(&0), "writebacks: {wrote:?}");
    }

    #[test]
    fn store_then_reload_hits_l1() {
        let mut c = CoreCaches::new(&tiny_cfg()).unwrap();
        c.access(128, true);
        assert_eq!(c.access(128, false).level, HitLevel::L1);
        assert_eq!(c.l1_stats().hits(), 1);
    }

    #[test]
    fn streaming_produces_bounded_writebacks() {
        // A read-only stream must never generate PCM writes.
        let mut c = CoreCaches::new(&tiny_cfg()).unwrap();
        let mut writes = 0;
        for i in 0..10_000u64 {
            writes += c.access(i * 64, false).pcm_writebacks.len();
        }
        assert_eq!(writes, 0);
    }

    #[test]
    fn write_stream_eventually_writes_back() {
        let mut c = CoreCaches::new(&tiny_cfg()).unwrap();
        let mut writes = 0;
        for i in 0..100_000u64 {
            writes += c.access(i * 64 % (8 << 20), true).pcm_writebacks.len();
        }
        assert!(writes > 0, "dirty working set larger than LLC must spill");
    }

    #[test]
    fn baseline_config_constructs() {
        let c = CoreCaches::new(&CacheHierarchyConfig::default()).unwrap();
        assert_eq!(c.l1_stats().accesses(), 0);
        assert_eq!(c.l2_stats().accesses(), 0);
        assert_eq!(c.l3_stats().accesses(), 0);
    }
}
