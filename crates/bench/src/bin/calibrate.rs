//! Quick shape-calibration check: prints the headline scheme comparison
//! and the Table 2 rate calibration in one pass. Useful while tuning the
//! workload models.
//!
//! ```sh
//! FPB_INSTRUCTIONS=400000 cargo run --release -p fpb-bench --bin calibrate
//! ```

use fpb_bench::{all_workloads, bench_options, print_table, run_matrix, speedup_rows};
use fpb_sim::SchemeRegistry;
use fpb_types::SystemConfig;

fn main() {
    let cfg = SystemConfig::default();
    let opts = bench_options();
    let specs = ["dimm-chip", "dimm-only", "gcp:bim:0.7", "gcp-ipm", "fpb", "ideal"];
    let registry = SchemeRegistry::standard();
    let labels: Vec<String> = specs
        .iter()
        .map(|spec| registry.build(spec, &cfg).expect("calibrate spec").label)
        .collect();
    let labels: Vec<&str> = labels.iter().map(String::as_str).collect();
    let wls = all_workloads();
    let matrix = run_matrix(&cfg, &wls, &specs, &opts);
    let rows = speedup_rows(&wls, &matrix, 0);
    print_table("Calibration: speedup vs DIMM+chip", &labels, &rows);

    // Also dump RPKI/WPKI and write stats from the DIMM+chip column.
    println!("\nworkload   RPKI(meas/tgt)  WPKI(meas/tgt)  cells/wr  burst%");
    for (wl, ms) in wls.iter().zip(&matrix) {
        let m = &ms[0];
        let ki = m.instructions_per_core as f64 / 1000.0;
        println!(
            "{:<10} {:>6.2}/{:<6.2} {:>6.2}/{:<6.2} {:>8.0} {:>7.1}",
            wl.name,
            m.pcm_reads as f64 / ki,
            wl.table2_rpki,
            m.pcm_writes as f64 / ki,
            wl.table2_wpki,
            m.avg_cell_changes(),
            m.burst_fraction() * 100.0
        );
    }
}
