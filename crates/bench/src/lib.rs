//! Experiment harness shared by every per-figure bench.
//!
//! Each bench target (`benches/figXX_*.rs`, `harness = false`) regenerates
//! one table or figure of the paper: it sweeps the paper's workloads and
//! schemes through [`fpb_sim::run_workload`] and prints the same
//! rows/series the paper reports. This crate holds the shared machinery:
//! run-scale selection, the speedup matrix runner, and table printing.
//!
//! Run scale: benches default to a reduced, shape-preserving instruction
//! budget. Set `FPB_INSTRUCTIONS` (per core) to raise or lower it, e.g.
//! `FPB_INSTRUCTIONS=500000 cargo bench -p fpb-bench`.
//!
//! Parallelism: [`run_matrix`] fans workloads across worker threads
//! (results are deterministic and identical to a serial run). Set
//! `FPB_JOBS` to pin the worker count; it defaults to the machine's
//! available parallelism.

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

use fpb_sim::engine::{run_workload_warmed, warm_cores};
use fpb_sim::exec::{default_jobs, parallel_map_indexed};
use fpb_sim::metrics::gmean;
use fpb_sim::{Metrics, SchemeRegistry, SchemeSetup, SimOptions};
use fpb_trace::catalog::{self, Workload, WORKLOADS};
use fpb_types::SystemConfig;

/// Default per-core instruction budget for bench runs.
pub const DEFAULT_INSTRUCTIONS: u64 = 120_000;

/// Reads the run scale from `FPB_INSTRUCTIONS`, defaulting to
/// [`DEFAULT_INSTRUCTIONS`].
///
/// # Examples
///
/// ```
/// let opts = fpb_bench::bench_options();
/// assert!(opts.instructions_per_core > 0);
/// ```
pub fn bench_options() -> SimOptions {
    let instr = std::env::var("FPB_INSTRUCTIONS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_INSTRUCTIONS);
    SimOptions::with_instructions(instr)
}

/// Worker threads for bench fan-out: `FPB_JOBS` if set (minimum 1),
/// otherwise the machine's available parallelism.
pub fn bench_jobs() -> usize {
    std::env::var("FPB_JOBS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(default_jobs)
        .max(1)
}

/// Loads all thirteen Table 2 workloads.
///
/// # Panics
///
/// Panics if the catalog is inconsistent (a bug).
pub fn all_workloads() -> Vec<Workload> {
    WORKLOADS
        .iter()
        .map(|n| catalog::workload(n).expect("catalog workload"))
        .collect()
}

/// One row of a result table: a workload name and one value per scheme.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (workload name, or `gmean`).
    pub label: String,
    /// One value per column.
    pub values: Vec<f64>,
}

/// Runs the schemes named by registry `specs` over `workloads` and
/// returns per-workload metrics (indexed `[workload][spec]`).
///
/// # Panics
///
/// Panics if any spec does not resolve in the [`SchemeRegistry`].
pub fn run_matrix(
    cfg: &SystemConfig,
    workloads: &[Workload],
    specs: &[&str],
    opts: &SimOptions,
) -> Vec<Vec<Metrics>> {
    let registry = SchemeRegistry::standard();
    let setups: Vec<SchemeSetup> = specs
        .iter()
        .map(|spec| {
            registry
                .build(spec, cfg)
                .unwrap_or_else(|e| panic!("scheme spec `{spec}`: {e}"))
        })
        .collect();
    run_matrix_setups(cfg, workloads, &setups, opts)
}

/// Runs already-built `setups` over `workloads` and returns per-workload
/// metrics (indexed `[workload][setup]`) — for benches composing setups
/// the spec grammar cannot express (e.g. builder-chained ablations).
///
/// Workloads fan across [`bench_jobs`] worker threads; results keep
/// workload order and are identical to a serial run.
pub fn run_matrix_setups(
    cfg: &SystemConfig,
    workloads: &[Workload],
    setups: &[SchemeSetup],
    opts: &SimOptions,
) -> Vec<Vec<Metrics>> {
    parallel_map_indexed(workloads, bench_jobs(), |_, wl| {
        // Warm once per workload; every scheme replays from identical
        // initial cache state.
        let cores = warm_cores(wl, cfg, opts);
        setups
            .iter()
            .map(|s| run_workload_warmed(wl, cfg, s, opts, &cores))
            .collect()
    })
}

/// Converts a metrics matrix into speedup rows relative to column
/// `baseline_col` (Eq. 7), appending a `gmean` row.
///
/// # Panics
///
/// Panics if the matrix is empty or `baseline_col` is out of range.
pub fn speedup_rows(
    workloads: &[Workload],
    matrix: &[Vec<Metrics>],
    baseline_col: usize,
) -> Vec<Row> {
    assert!(!matrix.is_empty(), "empty matrix");
    let cols = matrix[0].len();
    assert!(baseline_col < cols, "baseline column out of range");
    let mut rows: Vec<Row> = workloads
        .iter()
        .zip(matrix)
        .map(|(wl, ms)| Row {
            label: wl.name.to_string(),
            values: ms
                .iter()
                .map(|m| m.speedup_over(&ms[baseline_col]))
                .collect(),
        })
        .collect();
    let gmean_vals: Vec<f64> = (0..cols)
        .map(|c| gmean(&rows.iter().map(|r| r.values[c]).collect::<Vec<_>>()))
        .collect();
    rows.push(Row {
        label: "gmean".to_string(),
        values: gmean_vals,
    });
    rows
}

/// Prints a table in the paper's figure layout: workloads down the side,
/// schemes across the top.
pub fn print_table(title: &str, columns: &[&str], rows: &[Row]) {
    println!();
    println!("=== {title} ===");
    print!("{:<10}", "workload");
    for c in columns {
        print!(" {c:>14}");
    }
    println!();
    for r in rows {
        print!("{:<10}", r.label);
        for v in &r.values {
            print!(" {v:>14.3}");
        }
        println!();
    }
}

/// Prints a single-value-per-workload series (e.g. Fig. 10's burst
/// fractions).
pub fn print_series(title: &str, unit: &str, rows: &[(String, f64)]) {
    println!();
    println!("=== {title} ===");
    for (label, v) in rows {
        println!("{label:<10} {v:>12.3} {unit}");
    }
}

/// Geometric-mean helper re-exported for bench targets.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    gmean(xs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_default_and_env_parse() {
        let opts = bench_options();
        assert!(opts.instructions_per_core >= 1);
    }

    #[test]
    fn jobs_default_is_positive() {
        assert!(bench_jobs() >= 1);
    }

    #[test]
    fn workload_list_matches_catalog() {
        let wls = all_workloads();
        assert_eq!(wls.len(), 13);
        assert_eq!(wls[0].name, "ast_m");
        assert_eq!(wls[12].name, "mix_3");
    }

    #[test]
    fn speedup_rows_normalize_to_baseline() {
        let cfg = SystemConfig::default();
        let wls = vec![catalog::workload("mcf_m").unwrap()];
        let opts = SimOptions::with_instructions(60_000);
        let matrix = run_matrix(&cfg, &wls, &["dimm-chip", "ideal"], &opts);
        let rows = speedup_rows(&wls, &matrix, 0);
        assert_eq!(rows.len(), 2); // workload + gmean
        assert_eq!(rows[0].values[0], 1.0, "baseline column is 1.0");
        assert!(
            rows[0].values[1] > 1.0,
            "Ideal must beat DIMM+chip on a write-bound workload: {}",
            rows[0].values[1]
        );
    }
}
