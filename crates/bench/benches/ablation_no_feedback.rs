//! Ablation (motivating §2.1.1): the value of device feedback.
//!
//! MLC writes are non-deterministic, so a DRAM-style memory controller
//! without the on-DIMM bridge chip must hold each bank (and its power
//! tokens) for the *worst-case* iteration count on every write. The paper
//! adopts Fang et al.'s universal memory interface precisely to avoid
//! this; this ablation quantifies how much that choice is worth.

use fpb_bench::{all_workloads, bench_options, print_table, run_matrix_setups, speedup_rows};
use fpb_sim::SchemeSetup;
use fpb_types::SystemConfig;

fn main() {
    let cfg = SystemConfig::default();
    let opts = bench_options();
    let wls = all_workloads();

    let setups = vec![
        SchemeSetup::dimm_chip(&cfg),
        SchemeSetup::dimm_chip(&cfg).with_worst_case_mc(),
        SchemeSetup::ideal(&cfg),
        SchemeSetup::ideal(&cfg).with_worst_case_mc(),
    ];
    let matrix = run_matrix_setups(&cfg, &wls, &setups, &opts);
    let rows = speedup_rows(&wls, &matrix, 0);
    print_table(
        "Ablation: feedback-less (worst-case) MC, vs DIMM+chip with feedback",
        &["DIMM+chip", "chip+worstMC", "Ideal", "Ideal+worstMC"],
        &rows,
    );

    let g = rows.last().expect("gmean");
    println!("\npaper (§2.1.1): assuming worst-case iterations 'greatly degrades performance'");
    println!(
        "measured: worst-case MC runs at {:.2}x of the feedback design (power-budgeted), {:.2}x (ideal power)",
        g.values[1],
        g.values[3] / g.values[2]
    );
    assert!(
        g.values[1] < 0.95,
        "worst-case holds must cost real performance: {}",
        g.values[1]
    );
    assert!(
        g.values[3] < g.values[2],
        "even unlimited power cannot hide worst-case bank holds"
    );
}
