//! Figure 10 — percentage of execution cycles spent in write bursts for
//! the baseline (DIMM+chip).
//!
//! Expected shape (§5.2): write-intensive workloads spend a large
//! fraction of time in bursts (the paper's average is 52.2 %), which is
//! the motivation for improving write throughput.

use fpb_bench::{all_workloads, bench_options, print_series};
use fpb_sim::{run_workload, SchemeSetup};
use fpb_types::SystemConfig;

fn main() {
    let cfg = SystemConfig::default();
    let opts = bench_options();
    let setup = SchemeSetup::dimm_chip(&cfg);

    let mut rows = Vec::new();
    let mut sum = 0.0;
    let wls = all_workloads();
    for wl in &wls {
        let m = run_workload(wl, &cfg, &setup, &opts);
        let pct = m.burst_fraction() * 100.0;
        sum += pct;
        rows.push((wl.name.to_string(), pct));
    }
    let avg = sum / wls.len() as f64;
    rows.push(("mean".to_string(), avg));
    print_series(
        "Figure 10: % of execution cycles in write burst (baseline)",
        "%",
        &rows,
    );
    println!("\npaper mean: 52.2 %; measured mean: {avg:.1} %");
    assert!(avg > 20.0, "write bursts must dominate write-heavy runs");
}
