//! Figure 11 — FPB-GCP speedup (naïve mapping) at different GCP power
//! efficiencies, normalized to DIMM+chip.
//!
//! Expected shape (§6.1.1): GCP-NE-0.95 ≈ DIMM-only; effectiveness decays
//! as E_GCP drops, nearly vanishing at 0.5 under the naïve mapping.

use fpb_bench::{all_workloads, bench_options, print_table, run_matrix_setups, speedup_rows};
use fpb_pcm::CellMapping;
use fpb_sim::SchemeSetup;
use fpb_types::SystemConfig;

fn main() {
    let cfg = SystemConfig::default();
    let opts = bench_options();
    let wls = all_workloads();

    let setups = vec![
        SchemeSetup::dimm_chip(&cfg),
        SchemeSetup::dimm_only(&cfg),
        SchemeSetup::gcp(&cfg, CellMapping::Naive, 0.95),
        SchemeSetup::gcp(&cfg, CellMapping::Naive, 0.7),
        SchemeSetup::gcp(&cfg, CellMapping::Naive, 0.5),
    ];
    let matrix = run_matrix_setups(&cfg, &wls, &setups, &opts);
    let rows = speedup_rows(&wls, &matrix, 0);
    print_table(
        "Figure 11: speedup vs DIMM+chip for GCP efficiencies (naive mapping)",
        &["DIMM+chip", "DIMM-only", "GCP-NE-0.95", "GCP-NE-0.7", "GCP-NE-0.5"],
        &rows,
    );

    let g = rows.last().expect("gmean");
    println!("\npaper: GCP-NE-0.95 +36.3 %, GCP-NE-0.7 +23.7 %, GCP-NE-0.5 +2.8 % over DIMM+chip");
    println!(
        "measured: +{:.1} %, +{:.1} %, +{:.1} %",
        (g.values[2] - 1.0) * 100.0,
        (g.values[3] - 1.0) * 100.0,
        (g.values[4] - 1.0) * 100.0
    );
    assert!(
        g.values[2] >= g.values[3] - 0.03 && g.values[3] >= g.values[4] - 0.03,
        "GCP benefit must decay with efficiency (within noise): {:?}",
        &g.values[2..]
    );
    assert!(g.values[2] > 1.0, "a 0.95-efficient GCP must help");
}
