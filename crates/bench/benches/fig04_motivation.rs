//! Figure 4 — performance under power restrictions, normalized to Ideal.
//!
//! Schemes: Ideal, DIMM-only, DIMM+chip, PWL (intra-line wear leveling),
//! 1.5×/2× local charge pumps, and out-of-order write scheduling with
//! 24/48/96-entry write queues (Sche-X).
//!
//! Expected shape (§2.2): DIMM-only loses ~33 % and DIMM+chip ~51 % vs
//! Ideal; PWL and Sche-X barely help; 2×local nearly recovers DIMM-only.

use fpb_bench::{all_workloads, bench_options, print_table, run_matrix_setups, speedup_rows, Row};
use fpb_sim::engine::{run_workload_warmed, warm_cores};
use fpb_sim::SchemeSetup;
use fpb_types::SystemConfig;

fn main() {
    let cfg = SystemConfig::default();
    let opts = bench_options();
    let wls = all_workloads();

    let setups = vec![
        SchemeSetup::ideal(&cfg),
        SchemeSetup::dimm_only(&cfg),
        SchemeSetup::dimm_chip(&cfg),
        SchemeSetup::pwl(&cfg),
        SchemeSetup::scaled_local(&cfg, 1.5),
        SchemeSetup::scaled_local(&cfg, 2.0),
    ];
    let mut matrix = run_matrix_setups(&cfg, &wls, &setups, &opts);

    // Sche-X: DIMM+chip with out-of-order write scheduling over an X-entry
    // queue (the engine always scans the whole queue, so Sche-X is the
    // queue-size variant, matching the paper's observation that it barely
    // moves performance).
    for entries in [24usize, 48, 96] {
        let sched_cfg = cfg.clone().with_write_queue(entries);
        let setup = SchemeSetup::dimm_chip(&sched_cfg);
        for (wi, wl) in wls.iter().enumerate() {
            let cores = warm_cores(wl, &sched_cfg, &opts);
            let m = run_workload_warmed(wl, &sched_cfg, &setup, &opts, &cores);
            matrix[wi].push(m);
        }
    }

    let rows = speedup_rows(&wls, &matrix, 0); // normalize to Ideal
    let cols = [
        "Ideal",
        "DIMM-only",
        "DIMM+chip",
        "PWL",
        "1.5xlocal",
        "2xlocal",
        "sche24",
        "sche48",
        "sche96",
    ];
    print_table("Figure 4: speedup normalized to Ideal", &cols, &rows);

    let g: &Row = rows.last().expect("gmean row");
    println!("\npaper:   DIMM-only 0.67, DIMM+chip 0.49 of Ideal");
    println!(
        "measured: DIMM-only {:.2}, DIMM+chip {:.2} of Ideal",
        g.values[1], g.values[2]
    );
    assert!(g.values[1] < 0.95, "DIMM-only must lose performance");
    assert!(g.values[2] < g.values[1] + 0.03, "chip budget must cost more");
    assert!(
        g.values[5] >= g.values[2],
        "2xlocal must recover chip-budget loss"
    );
}
