//! Figure 21 — FPB speedup for different write-queue depths (each column
//! normalized to DIMM+chip with the same queue).
//!
//! Expected shape (§6.4.3): deeper queues make bursts burstier and help
//! FPB more, saturating around 48 entries.

use fpb_bench::{all_workloads, bench_options, print_table, Row};
use fpb_sim::engine::{run_workload_warmed, warm_cores};
use fpb_sim::SchemeSetup;
use fpb_types::SystemConfig;

fn main() {
    let opts = bench_options();
    let wls = all_workloads();
    let depths = [24usize, 48, 96];

    let mut rows: Vec<Row> = wls
        .iter()
        .map(|wl| Row {
            label: wl.name.to_string(),
            values: Vec::new(),
        })
        .collect();
    for &entries in &depths {
        let cfg = SystemConfig::default().with_write_queue(entries);
        for (wi, wl) in wls.iter().enumerate() {
            let cores = warm_cores(wl, &cfg, &opts);
            let base = run_workload_warmed(wl, &cfg, &SchemeSetup::dimm_chip(&cfg), &opts, &cores);
            let fpb = run_workload_warmed(wl, &cfg, &SchemeSetup::fpb(&cfg), &opts, &cores);
            rows[wi].values.push(fpb.speedup_over(&base));
        }
    }
    let gmeans: Vec<f64> = (0..depths.len())
        .map(|c| fpb_bench::geometric_mean(&rows.iter().map(|r| r.values[c]).collect::<Vec<_>>()))
        .collect();
    rows.push(Row {
        label: "gmean".to_string(),
        values: gmeans.clone(),
    });

    print_table(
        "Figure 21: FPB speedup vs DIMM+chip at each write-queue depth",
        &["24", "48", "96"],
        &rows,
    );

    println!("\npaper gmeans: 24 +75.6 %, 48 +85.2 %, 96 +88.1 % (saturating at 48)");
    println!(
        "measured gmeans: 24 +{:.1} %, 48 +{:.1} %, 96 +{:.1} %",
        (gmeans[0] - 1.0) * 100.0,
        (gmeans[1] - 1.0) * 100.0,
        (gmeans[2] - 1.0) * 100.0
    );
    assert!(gmeans.iter().all(|&g| g > 1.0), "FPB must win at every depth");
}
