//! Figure 23 — FPB combined with write cancellation (WC), write pausing
//! (WP) and write truncation (WT), normalized to DIMM+chip.
//!
//! The paper enlarges the queues to 320 entries for WC (§6.4.5). Expected
//! shape: the read-latency-reduction techniques stack on top of FPB.

use fpb_bench::{all_workloads, bench_options, print_table, run_matrix_setups, speedup_rows};
use fpb_sim::SchemeSetup;
use fpb_types::SystemConfig;

fn main() {
    let mut cfg = SystemConfig::default();
    // 40 R/W entries per bank, 8 banks (§6.4.5).
    cfg.queues.read_entries = 320;
    cfg.queues.write_entries = 320;
    // A 320-entry write queue only fills (and so only exercises the burst
    // path) with enough write traffic behind it; keep this experiment's
    // run length proportional to the queue depth.
    let mut opts = bench_options();
    opts.instructions_per_core = opts
        .instructions_per_core
        .max(6 * fpb_bench::DEFAULT_INSTRUCTIONS);
    let wls = all_workloads();

    let setups = vec![
        SchemeSetup::dimm_chip(&cfg),
        SchemeSetup::fpb(&cfg),
        SchemeSetup::fpb(&cfg).with_wc(),
        SchemeSetup::fpb(&cfg).with_wc().with_wp(),
        SchemeSetup::fpb(&cfg).with_wc().with_wp().with_wt(8),
    ];
    let matrix = run_matrix_setups(&cfg, &wls, &setups, &opts);
    let rows = speedup_rows(&wls, &matrix, 0);
    print_table(
        "Figure 23: FPB with WC, WP and WT (320-entry queues), vs DIMM+chip",
        &["DIMM+chip", "FPB", "FPB+WC", "FPB+WC+WP", "FPB+WC+WP+WT"],
        &rows,
    );

    let g = rows.last().expect("gmean");
    println!("\npaper: FPB+WC+WP+WT reaches +175.8 % over DIMM+chip (+57 % over FPB alone)");
    println!(
        "measured: FPB +{:.1} %, full stack +{:.1} % over DIMM+chip",
        (g.values[1] - 1.0) * 100.0,
        (g.values[4] - 1.0) * 100.0
    );
    assert!(
        g.values[4] >= g.values[1] - 0.03,
        "the full stack must not lose to FPB alone"
    );
}
