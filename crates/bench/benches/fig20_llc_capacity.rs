//! Figure 20 — FPB speedup for different last-level-cache capacities
//! (each column normalized to DIMM+chip at the same LLC size).
//!
//! Expected shape (§6.4.2): gains everywhere; a huge (128 MB/core) LLC
//! filters so much traffic that the benefit shrinks.

use fpb_bench::{all_workloads, bench_options, print_table, run_matrix, Row};
use fpb_types::SystemConfig;

fn main() {
    let opts = bench_options();
    let wls = all_workloads();
    let capacities = [8u32, 16, 32, 128];

    let mut rows: Vec<Row> = wls
        .iter()
        .map(|wl| Row {
            label: wl.name.to_string(),
            values: Vec::new(),
        })
        .collect();
    for &mib in &capacities {
        let cfg = SystemConfig::default().with_llc_mib(mib);
        let matrix = run_matrix(&cfg, &wls, &["dimm-chip", "fpb"], &opts);
        for (wi, ms) in matrix.iter().enumerate() {
            rows[wi].values.push(ms[1].speedup_over(&ms[0]));
        }
    }
    let gmeans: Vec<f64> = (0..capacities.len())
        .map(|c| fpb_bench::geometric_mean(&rows.iter().map(|r| r.values[c]).collect::<Vec<_>>()))
        .collect();
    rows.push(Row {
        label: "gmean".to_string(),
        values: gmeans.clone(),
    });

    print_table(
        "Figure 20: FPB speedup vs DIMM+chip at each LLC capacity (per core)",
        &["8M", "16M", "32M", "128M"],
        &rows,
    );

    println!("\npaper gmeans: 8M +39.9 %, 16M +62.1 %, 32M +75.6 %, 128M +23.4 %");
    println!(
        "measured gmeans: 8M +{:.1} %, 16M +{:.1} %, 32M +{:.1} %, 128M +{:.1} %",
        (gmeans[0] - 1.0) * 100.0,
        (gmeans[1] - 1.0) * 100.0,
        (gmeans[2] - 1.0) * 100.0,
        (gmeans[3] - 1.0) * 100.0
    );
    assert!(gmeans.iter().all(|&g| g > 0.95), "FPB must not hurt at any LLC size");
}
