//! Figure 18 — write-throughput improvement, normalized to DIMM+chip.
//!
//! Expected shape (§6.3): GCP alone buys a moderate gain; GCP+IPM and
//! GCP+IPM+MR multiply write throughput severalfold (3.4× in the paper),
//! still short of Ideal.

use fpb_bench::{all_workloads, bench_options, geometric_mean, print_table, run_matrix_setups, Row};
use fpb_sim::SchemeSetup;
use fpb_types::SystemConfig;

fn main() {
    let cfg = SystemConfig::default();
    let opts = bench_options();
    let wls = all_workloads();

    let setups = vec![
        SchemeSetup::dimm_chip(&cfg),
        SchemeSetup::gcp(&cfg, fpb_pcm::CellMapping::Bim, 0.7),
        SchemeSetup::gcp_ipm(&cfg),
        SchemeSetup::fpb(&cfg),
        SchemeSetup::ideal(&cfg),
    ];
    let matrix = run_matrix_setups(&cfg, &wls, &setups, &opts);

    let mut rows = Vec::new();
    for (wl, ms) in wls.iter().zip(&matrix) {
        let base = ms[0].write_throughput().max(1e-12);
        rows.push(Row {
            label: wl.name.to_string(),
            values: ms.iter().map(|m| m.write_throughput() / base).collect(),
        });
    }
    let cols_n = setups.len();
    let gmeans: Vec<f64> = (0..cols_n)
        .map(|c| {
            geometric_mean(
                &rows
                    .iter()
                    .map(|r| r.values[c].max(1e-9))
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    rows.push(Row {
        label: "gmean".to_string(),
        values: gmeans.clone(),
    });

    print_table(
        "Figure 18: normalized write throughput",
        &["DIMM+chip", "GCP", "GCP+IPM", "GCP+IPM+MR", "Ideal"],
        &rows,
    );

    println!("\npaper: GCP +58.8 %, GCP+IPM+MR 3.4x, Ideal ~4.4x over DIMM+chip");
    println!(
        "measured gmeans: GCP {:.2}x, GCP+IPM {:.2}x, GCP+IPM+MR {:.2}x, Ideal {:.2}x",
        gmeans[1], gmeans[2], gmeans[3], gmeans[4]
    );
    assert!(gmeans[3] > gmeans[1], "IPM+MR must beat GCP alone");
    assert!(gmeans[3] > 1.3, "full FPB must substantially lift throughput");
    assert!(gmeans[4] >= gmeans[3] - 0.05, "Ideal bounds everything");
}
