//! Figure 15 — BIM speedup as GCP efficiency decreases (0.7 → 0.1), for
//! astar, mcf and mix_1, normalized to DIMM+chip.
//!
//! Expected shape (§6.1.6): BIM preserves the GCP's benefit down to very
//! low efficiencies (mix_1 stays useful even at 0.2), with benefit
//! monotone-ish in efficiency.

use fpb_bench::{bench_options, print_table, Row};
use fpb_pcm::CellMapping;
use fpb_sim::engine::{run_workload_warmed, warm_cores};
use fpb_sim::SchemeSetup;
use fpb_trace::catalog;
use fpb_types::SystemConfig;

fn main() {
    let cfg = SystemConfig::default();
    let opts = bench_options();
    let effs = [0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1];
    let workloads = ["ast_m", "mcf_m", "mix_1"];

    let mut rows = Vec::new();
    for name in workloads {
        let wl = catalog::workload(name).expect("workload");
        let cores = warm_cores(&wl, &cfg, &opts);
        let base = run_workload_warmed(&wl, &cfg, &SchemeSetup::dimm_chip(&cfg), &opts, &cores);
        let values: Vec<f64> = effs
            .iter()
            .map(|&e| {
                let m = run_workload_warmed(
                    &wl,
                    &cfg,
                    &SchemeSetup::gcp(&cfg, CellMapping::Bim, e),
                    &opts,
                    &cores,
                );
                m.speedup_over(&base)
            })
            .collect();
        rows.push(Row {
            label: name.to_string(),
            values,
        });
    }

    print_table(
        "Figure 15: BIM speedup vs DIMM+chip as GCP efficiency decreases",
        &["0.7", "0.6", "0.5", "0.4", "0.3", "0.2", "0.1"],
        &rows,
    );

    for r in &rows {
        // The paper's claim (§6.1.6): BIM *preserves* the GCP benefit even
        // at very low efficiency — the series stays above 1.0 throughout.
        assert!(
            r.values.iter().all(|&v| v > 1.0),
            "{}: BIM must keep the GCP beneficial at every efficiency: {:?}",
            r.label,
            r.values
        );
        // And the high-efficiency end is at least noise-comparable to the
        // low end (single-workload runs carry more variance than gmeans).
        assert!(
            r.values[0] >= r.values[6] - 0.12,
            "{}: benefit should not grow as efficiency collapses: {:?}",
            r.label,
            r.values
        );
    }
    println!("\nshape check passed: BIM preserves the GCP benefit at low efficiency");
}
