//! Figure 12 — cell-mapping optimizations: VIM and BIM vs the naïve
//! mapping at practical GCP efficiencies, normalized to DIMM+chip.
//!
//! Expected shape (§6.1.2): VIM/BIM beat NE at the same efficiency, and
//! keep the GCP effective even at E_GCP = 0.5.

use fpb_bench::{all_workloads, bench_options, print_table, run_matrix_setups, speedup_rows};
use fpb_pcm::CellMapping;
use fpb_sim::SchemeSetup;
use fpb_types::SystemConfig;

fn main() {
    let cfg = SystemConfig::default();
    let opts = bench_options();
    let wls = all_workloads();

    let setups = vec![
        SchemeSetup::dimm_chip(&cfg),
        SchemeSetup::gcp(&cfg, CellMapping::Naive, 0.7),
        SchemeSetup::gcp(&cfg, CellMapping::Vim, 0.7),
        SchemeSetup::gcp(&cfg, CellMapping::Vim, 0.5),
        SchemeSetup::gcp(&cfg, CellMapping::Bim, 0.7),
        SchemeSetup::gcp(&cfg, CellMapping::Bim, 0.5),
    ];
    let matrix = run_matrix_setups(&cfg, &wls, &setups, &opts);
    let rows = speedup_rows(&wls, &matrix, 0);
    print_table(
        "Figure 12: speedup of cell-mapping optimizations vs DIMM+chip",
        &["DIMM+chip", "GCP-NE-0.7", "GCP-VIM-0.7", "GCP-VIM-0.5", "GCP-BIM-0.7", "GCP-BIM-0.5"],
        &rows,
    );

    let g = rows.last().expect("gmean");
    println!("\npaper: VIM/BIM at 0.7 come within ~2 % of DIMM-only; BIM slightly best overall");
    // Divergence note (see EXPERIMENTS.md): in this reproduction's
    // integer-data model, VIM concentrates the hottest within-word cell
    // position on one chip (cell 15 and cell 7 both map to chip 7), so
    // VIM trails NE slightly on integer-heavy workloads instead of
    // matching BIM as in the paper. BIM's staggering fixes it — the
    // paper's headline mapping result.
    assert!(
        g.values[2] >= g.values[1] - 0.12,
        "VIM must stay within noise+int-penalty of NE: {} vs {}",
        g.values[2],
        g.values[1]
    );
    assert!(
        g.values[4] >= g.values[1] - 0.02,
        "BIM must not lose to NE: {} vs {}",
        g.values[4],
        g.values[1]
    );
    assert!(
        g.values[5] > 1.0,
        "BIM must keep a 0.5-efficiency GCP useful"
    );
}
