//! Figure 17 — Multi-RESET iteration split limit (2, 3 or 4 group-RESETs),
//! normalized to DIMM+chip.
//!
//! Expected shape (§6.2.2): 3 splits is the sweet spot; 4 adds write
//! latency for little extra admission benefit.

use fpb_bench::{all_workloads, bench_options, print_table, run_matrix_setups, speedup_rows};
use fpb_sim::SchemeSetup;
use fpb_types::SystemConfig;

fn main() {
    let cfg = SystemConfig::default();
    let opts = bench_options();
    let wls = all_workloads();

    let setups = vec![
        SchemeSetup::dimm_chip(&cfg),
        SchemeSetup::fpb_with_splits(&cfg, 2),
        SchemeSetup::fpb_with_splits(&cfg, 3),
        SchemeSetup::fpb_with_splits(&cfg, 4),
    ];
    let matrix = run_matrix_setups(&cfg, &wls, &setups, &opts);
    let rows = speedup_rows(&wls, &matrix, 0);
    print_table(
        "Figure 17: Multi-RESET split limit, speedup vs DIMM+chip",
        &["DIMM+chip", "IPM+MR2", "IPM+MR3", "IPM+MR4"],
        &rows,
    );

    let g = rows.last().expect("gmean");
    println!("\npaper: best at 3 splits; 4 splits loses ~2 % to added latency");
    println!(
        "measured gmeans: MR2 {:.3}, MR3 {:.3}, MR4 {:.3}",
        g.values[1], g.values[2], g.values[3]
    );
    let best = g.values[1..].iter().cloned().fold(f64::MIN, f64::max);
    assert!(
        g.values[2] >= best - 0.03,
        "3 splits must be at or near the best"
    );
}
