//! Criterion microbenchmarks of the simulator's hot paths: cache lookups,
//! MLC line-write construction/advancement, token-ledger grants, and
//! trace generation. These guard the simulator's own performance — a run
//! regenerating all figures makes hundreds of millions of these calls.

// Bench-only target: unwrap on known-good fixtures is the clearest failure mode.
#![allow(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fpb_cache::SetAssocCache;
use fpb_core::{Ledger, PowerManager, PowerPolicyConfig, WriteId};
use fpb_pcm::{
    CellMapping, ChangeSet, DimmGeometry, IterationSampler, LineWrite, MlcLevel, WriteBufferPool,
};
use fpb_trace::{catalog, CoreTraceGenerator};
use fpb_types::{MlcWriteModel, PowerConfig, SimRng, Tokens};

fn bench_cache(c: &mut Criterion) {
    let mut cache = SetAssocCache::new(32 << 20, 256, 8).expect("cache");
    let mut addr: u64 = 0;
    c.bench_function("cache/access_streaming", |b| {
        b.iter(|| {
            addr = addr.wrapping_add(256) & ((1 << 30) - 1);
            black_box(cache.access(black_box(addr), addr.is_multiple_of(3)))
        })
    });
}

fn bench_line_write(c: &mut Criterion) {
    let geom = DimmGeometry::new(8, 1024);
    let sampler = IterationSampler::new(MlcWriteModel::default());
    let changes: ChangeSet = (0..256u32).map(|i| (i * 4, MlcLevel::L01)).collect();
    let mut rng = SimRng::seed_from(42);
    c.bench_function("pcm/line_write_construct", |b| {
        b.iter(|| {
            black_box(LineWrite::new(
                black_box(&changes),
                &geom,
                CellMapping::Bim,
                &sampler,
                &mut rng,
                1,
            ))
        })
    });
    c.bench_function("pcm/line_write_drive", |b| {
        b.iter(|| {
            let mut w = LineWrite::new(&changes, &geom, CellMapping::Bim, &sampler, &mut rng, 1);
            while let Some(d) = w.next_demand() {
                black_box(d.active_cells);
                w.advance();
            }
        })
    });
}

fn bench_ledger(c: &mut Criterion) {
    let mut ledger = Ledger::with_chips(560, 8, 66_500, 0.95, Some((0.7, 66_500)));
    let demand: Vec<Tokens> = (0..8).map(|i| Tokens::from_cells(4 + i)).collect();
    c.bench_function("core/ledger_grant_release", |b| {
        b.iter(|| {
            let g = ledger.try_grant_chips(black_box(&demand)).expect("fits");
            ledger.release(&g).unwrap();
        })
    });

    // Same ledger shape, but chip 0 is pinned near empty so its demand
    // must route through the GCP — this drives phase 2's headroom
    // ordering, the one grant path that allocated per call before the
    // ledger grew reusable scratch buffers.
    let mut ledger = Ledger::with_chips(560, 8, 66_500, 0.95, Some((0.7, 66_500)));
    let mut pin = vec![Tokens::ZERO; 8];
    pin[0] = Tokens::from_cells(60); // chip budget is 66.5 cells
    let _hold = ledger.try_grant_chips(&pin).expect("pin fits");
    let mut demand: Vec<Tokens> = (0..8).map(|i| Tokens::from_cells(2 + i)).collect();
    demand[0] = Tokens::from_cells(16); // exceeds chip 0's remaining headroom
    c.bench_function("core/ledger_grant_gcp_borrow", |b| {
        b.iter(|| {
            let g = ledger.try_grant_chips(black_box(&demand)).expect("fits via GCP");
            ledger.release(&g).unwrap();
        })
    });

    let geom = DimmGeometry::new(8, 1024);
    let sampler = IterationSampler::new(MlcWriteModel::default());
    let changes: ChangeSet = (0..128u32).map(|i| (i * 8 % 1024, MlcLevel::L10)).collect();
    let mut rng = SimRng::seed_from(3);
    c.bench_function("core/power_manager_write_lifecycle", |b| {
        let cfg = PowerPolicyConfig::fpb(&PowerConfig::default(), 8);
        let mut pm = PowerManager::new(cfg, &geom);
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            let id = WriteId::new(n);
            let mut w =
                LineWrite::new(&changes, &geom, CellMapping::Bim, &sampler, &mut rng, 1);
            assert!(pm.try_admit(id, &mut w));
            while {
                w.advance();
                !w.is_complete()
            } {
                assert!(pm.try_advance(id, &w));
            }
            pm.release(id);
        })
    });
}

fn bench_trace(c: &mut Criterion) {
    let profile = catalog::program("C.mcf").expect("profile");
    let mut rng = SimRng::seed_from(7);
    let mut gen = CoreTraceGenerator::new(profile.clone(), &mut rng);
    c.bench_function("trace/next_op", |b| b.iter(|| black_box(gen.next_op())));

    let data = profile.data;
    let mut rng = SimRng::seed_from(8);
    c.bench_function("trace/sample_change_set_256B", |b| {
        b.iter(|| black_box(data.sample_change_set(256, &mut rng)))
    });
}

/// Word-level change sampling vs the retained per-bit reference — the
/// tentpole speedup `fpb bench` tracks in `BENCH_hotpath.json`.
fn bench_change_sampling(c: &mut Criterion) {
    let data = catalog::program("C.mcf").expect("profile").data;

    let mut rng = SimRng::seed_from(0xDA7A);
    let mut out = ChangeSet::empty();
    c.bench_function("trace/change_sampling_words", |b| {
        b.iter(|| {
            data.sample_change_set_into(256, &mut rng, &mut out);
            black_box(out.len())
        })
    });

    let mut rng = SimRng::seed_from(0xDA7A);
    c.bench_function("trace/change_sampling_perbit_reference", |b| {
        b.iter(|| black_box(data.sample_change_set_reference(256, &mut rng)))
    });
}

/// Pooled `LineWrite` construction vs fresh allocation per write.
fn bench_line_write_pooled(c: &mut Criterion) {
    let geom = DimmGeometry::new(8, 1024);
    let sampler = IterationSampler::new(MlcWriteModel::default());
    let cells: Vec<(u32, MlcLevel)> = (0..256u32).map(|i| (i * 4, MlcLevel::L01)).collect();

    let mut pool = WriteBufferPool::new();
    let mut rng = SimRng::seed_from(0x9C3);
    c.bench_function("pcm/line_write_pooled", |b| {
        b.iter(|| {
            let w = pool.build(&cells, &geom, CellMapping::Bim, &sampler, &mut rng, 1);
            let iters = w.total_iterations();
            pool.recycle(w);
            black_box(iters)
        })
    });

    let mut rng = SimRng::seed_from(0x9C3);
    c.bench_function("pcm/line_write_fresh", |b| {
        b.iter(|| {
            black_box(LineWrite::from_cells(
                &cells,
                &geom,
                CellMapping::Bim,
                &sampler,
                &mut rng,
                1,
            ))
        })
    });
}

criterion_group!(
    benches,
    bench_cache,
    bench_line_write,
    bench_line_write_pooled,
    bench_ledger,
    bench_trace,
    bench_change_sampling
);
criterion_main!(benches);
