//! Figure 14 — average usable tokens requested from the GCP per line
//! write, and the energy-waste reduction of the interleaved mappings.
//!
//! Expected shape (§6.1.5): VIM and BIM request far fewer GCP tokens than
//! the naïve mapping, cutting the (inefficient) GCP's conversion waste.

use fpb_bench::{all_workloads, bench_options, print_table, Row};
use fpb_pcm::CellMapping;
use fpb_sim::engine::{run_workload_warmed, warm_cores};
use fpb_sim::SchemeSetup;
use fpb_types::SystemConfig;

fn main() {
    let cfg = SystemConfig::default();
    let opts = bench_options();
    let wls = all_workloads();
    let variants: [(CellMapping, f64); 6] = [
        (CellMapping::Naive, 0.7),
        (CellMapping::Naive, 0.5),
        (CellMapping::Vim, 0.7),
        (CellMapping::Vim, 0.5),
        (CellMapping::Bim, 0.7),
        (CellMapping::Bim, 0.5),
    ];

    let mut rows = Vec::new();
    let mut avg_sum = vec![0.0f64; variants.len()];
    let mut waste_sum = vec![0.0f64; variants.len()];
    for wl in &wls {
        let cores = warm_cores(wl, &cfg, &opts);
        let mut values = Vec::new();
        for (vi, &(mapping, eff)) in variants.iter().enumerate() {
            let m =
                run_workload_warmed(wl, &cfg, &SchemeSetup::gcp(&cfg, mapping, eff), &opts, &cores);
            let avg = m.avg_gcp_tokens_per_write();
            avg_sum[vi] += avg;
            waste_sum[vi] += m.power.gcp_waste_total().as_f64();
            values.push(avg);
        }
        rows.push(Row {
            label: wl.name.to_string(),
            values,
        });
    }
    let n = wls.len() as f64;
    rows.push(Row {
        label: "avg".to_string(),
        values: avg_sum.iter().map(|s| s / n).collect(),
    });

    let cols = ["NE-0.7", "NE-0.5", "VIM-0.7", "VIM-0.5", "BIM-0.7", "BIM-0.5"];
    print_table(
        "Figure 14: average usable GCP tokens requested per line write",
        &cols,
        &rows,
    );

    let waste_ne = waste_sum[0];
    let red_vim = 100.0 * (1.0 - waste_sum[2] / waste_ne.max(1e-9));
    let red_bim = 100.0 * (1.0 - waste_sum[4] / waste_ne.max(1e-9));
    println!("\npaper: at 0.7 efficiency VIM cuts GCP energy waste 78.5 %, BIM 64.4 % vs NE");
    println!("measured: VIM {red_vim:.1} %, BIM {red_bim:.1} % waste reduction");
    let avg_row = rows.last().expect("avg row");
    assert!(
        avg_row.values[2] <= avg_row.values[0],
        "VIM must request fewer GCP tokens than NE"
    );
    assert!(
        avg_row.values[4] <= avg_row.values[0],
        "BIM must request fewer GCP tokens than NE"
    );
}
