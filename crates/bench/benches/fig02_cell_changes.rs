//! Figure 2 — average cell changes per line write under different line
//! sizes, for 2-bit MLC and SLC interpretations of the same data.
//!
//! Expected shape (§2.1.2): MLC changes fewer cells than SLC for every
//! configuration, and larger lines change more cells.

use fpb_bench::{geometric_mean, print_table, Row};
use fpb_trace::catalog::{self, FIG2_WORKLOADS};
use fpb_types::SimRng;

const SAMPLES: usize = 400;

fn main() {
    let line_sizes = [256u32, 128, 64];
    let mut rows = Vec::new();
    let mut per_col: Vec<Vec<f64>> = vec![Vec::new(); 6];

    for name in FIG2_WORKLOADS {
        let wl = catalog::workload(name).expect("fig2 workload");
        let data = wl.per_core[0].data.clone();
        let mut rng = SimRng::seed_from(0xF162);
        let mut values = Vec::new();
        for &bytes in &line_sizes {
            let (mut mlc, mut slc) = (0u64, 0u64);
            for _ in 0..SAMPLES {
                let (m, s) = data.count_changes(bytes, &mut rng);
                mlc += m as u64;
                slc += s as u64;
            }
            values.push(mlc as f64 / SAMPLES as f64);
            values.push(slc as f64 / SAMPLES as f64);
        }
        for (col, v) in values.iter().enumerate() {
            per_col[col].push(*v);
        }
        rows.push(Row {
            label: name.to_string(),
            values,
        });
    }
    rows.push(Row {
        label: "gmean".to_string(),
        values: per_col.iter().map(|c| geometric_mean(c)).collect(),
    });

    print_table(
        "Figure 2: average cell changes per line write",
        &["256B-mlc", "256B-slc", "128B-mlc", "128B-slc", "64B-mlc", "64B-slc"],
        &rows,
    );

    // Shape checks from the paper's discussion of Fig. 2.
    for r in &rows {
        assert!(r.values[0] < r.values[1], "{}: MLC must change fewer cells than SLC", r.label);
        assert!(r.values[2] < r.values[3], "{}", r.label);
        assert!(r.values[4] < r.values[5], "{}", r.label);
        assert!(
            r.values[4] < r.values[2] && r.values[2] < r.values[0],
            "{}: larger lines must change more cells",
            r.label
        );
    }
    println!("\nshape checks passed: MLC < SLC, and changes grow with line size");
}
