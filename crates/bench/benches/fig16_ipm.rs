//! Figure 16 — FPB-IPM and Multi-RESET speedups over DIMM+chip, with
//! GCP-BIM-0.7 as the platform, plus the gmean at lower GCP efficiencies.
//!
//! Expected shape (§6.2.1): IPM adds a large step over GCP-BIM; IPM+MR
//! adds a further margin; the result lands within ~12 % of Ideal.

use fpb_bench::{all_workloads, bench_options, geometric_mean, print_table, run_matrix_setups, speedup_rows};
use fpb_sim::engine::{run_workload_warmed, warm_cores};
use fpb_sim::SchemeSetup;
use fpb_types::SystemConfig;

fn main() {
    let cfg = SystemConfig::default();
    let opts = bench_options();
    let wls = all_workloads();

    let setups = vec![
        SchemeSetup::dimm_chip(&cfg),
        SchemeSetup::gcp(&cfg, fpb_pcm::CellMapping::Bim, 0.7),
        SchemeSetup::gcp_ipm(&cfg),
        SchemeSetup::fpb(&cfg),
        SchemeSetup::ideal(&cfg),
    ];
    let matrix = run_matrix_setups(&cfg, &wls, &setups, &opts);
    let rows = speedup_rows(&wls, &matrix, 0);
    print_table(
        "Figure 16: IPM and Multi-RESET speedup vs DIMM+chip (GCP-BIM-0.7)",
        &["DIMM+chip", "GCP-BIM", "IPM", "IPM+MR", "Ideal"],
        &rows,
    );

    // gmean rows at reduced GCP efficiency (gm0.5 / gm0.3 in the figure).
    for eff in [0.5, 0.3] {
        let ecfg = cfg.clone().with_gcp_efficiency(eff);
        let mut speedups = Vec::new();
        for wl in &wls {
            let cores = warm_cores(wl, &ecfg, &opts);
            let base = run_workload_warmed(wl, &ecfg, &SchemeSetup::dimm_chip(&ecfg), &opts, &cores);
            let m = run_workload_warmed(wl, &ecfg, &SchemeSetup::fpb(&ecfg), &opts, &cores);
            speedups.push(m.speedup_over(&base));
        }
        println!("gm{eff:<8} IPM+MR at E_GCP={eff}: {:.3}", geometric_mean(&speedups));
    }

    let g = rows.last().expect("gmean");
    let (gcp, ipm, mr, ideal) = (g.values[1], g.values[2], g.values[3], g.values[4]);
    println!("\npaper: IPM +26.9 % over GCP-BIM; IPM+MR +75.6 % over DIMM+chip, within 12.2 % of Ideal");
    println!(
        "measured: IPM +{:.1} % over GCP-BIM; IPM+MR +{:.1} % over DIMM+chip; {:.1} % below Ideal",
        (ipm / gcp - 1.0) * 100.0,
        (mr - 1.0) * 100.0,
        (1.0 - mr / ideal) * 100.0
    );
    assert!(ipm > gcp, "IPM must improve on GCP alone");
    assert!(mr >= ipm - 0.02, "Multi-RESET must not hurt");
    assert!(mr <= ideal, "nothing beats Ideal");
    assert!(mr / ideal > 0.75, "IPM+MR must land near Ideal");
}
