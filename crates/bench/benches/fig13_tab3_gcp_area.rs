//! Figure 13 + Table 3 — GCP sizing: peak tokens requested and the
//! charge-pump area overhead.
//!
//! Part A reproduces Figure 13 under the production configuration (GCP
//! capped at one LCP): the peak concurrent usable output per workload and
//! mapping. Part B reproduces Table 3's economics: for each mapping, the
//! smallest pump capacity that keeps ≥ 95 % of the full-size speedup, and
//! its area overhead relative to the DIMM's local pumps — always a small
//! fraction of the 100 % cost of doubling every local pump.
//!
//! Expected shape (§6.1.3): interleaved mappings (VIM/BIM) balance chip
//! demand, so they get away with a smaller global pump than the naïve
//! mapping.

use fpb_bench::{all_workloads, bench_options, geometric_mean, print_table, Row};
use fpb_pcm::charge_pump::area_overhead_percent;
use fpb_pcm::CellMapping;
use fpb_sim::engine::{run_workload_warmed, warm_cores};
use fpb_sim::SchemeSetup;
use fpb_types::SystemConfig;

fn main() {
    let cfg = SystemConfig::default();
    let opts = bench_options();
    let wls = all_workloads();
    let mappings = [CellMapping::Naive, CellMapping::Vim, CellMapping::Bim];
    let capacities = [0.25f64, 0.5, 1.0];

    // speedups[mapping][capacity] across workloads, plus Fig. 13 peaks at
    // the production capacity (1 LCP).
    let mut peak_rows = Vec::new();
    let mut speedups = vec![vec![Vec::new(); capacities.len()]; mappings.len()];
    for wl in &wls {
        let cores = warm_cores(wl, &cfg, &opts);
        let base = run_workload_warmed(wl, &cfg, &SchemeSetup::dimm_chip(&cfg), &opts, &cores);
        let mut peaks = Vec::new();
        for (mi, &mapping) in mappings.iter().enumerate() {
            for (ci, &cap) in capacities.iter().enumerate() {
                let mut setup = SchemeSetup::gcp(&cfg, mapping, 0.7);
                if let Some(g) = setup.policy.gcp.as_mut() {
                    g.capacity_lcps = cap;
                }
                let m = run_workload_warmed(wl, &cfg, &setup, &opts, &cores);
                speedups[mi][ci].push(m.speedup_over(&base));
                if cap == 1.0 {
                    peaks.push(m.power.peak_gcp_tokens() as f64);
                }
            }
        }
        peak_rows.push(Row {
            label: wl.name.to_string(),
            values: peaks,
        });
    }
    let max_peaks: Vec<f64> = (0..mappings.len())
        .map(|mi| {
            peak_rows
                .iter()
                .map(|r| r.values[mi])
                .fold(0.0f64, f64::max)
        })
        .collect();
    peak_rows.push(Row {
        label: "max".to_string(),
        values: max_peaks.clone(),
    });
    print_table(
        "Figure 13: peak usable GCP tokens (E_GCP = 0.7, capacity = 1 LCP)",
        &["NE", "VIM", "BIM"],
        &peak_rows,
    );

    println!("\n=== Table 3: charge-pump area overhead ===");
    println!(
        "{:<26} {:>12} {:>10} {:>14}",
        "scheme", "raw tokens", "overhead", "gmean speedup"
    );
    println!("{:<26} {:>12} {:>10} {:>14}", "Baseline (8 chips)", 560, "-", "-");
    println!(
        "{:<26} {:>12} {:>9.1}% {:>14}",
        "2xLocal (8 chips)",
        1120 - 560,
        100.0,
        "-"
    );
    let pt_lcp_usable = 66.5f64;
    for (mi, &mapping) in mappings.iter().enumerate() {
        let gms: Vec<f64> = (0..capacities.len())
            .map(|ci| geometric_mean(&speedups[mi][ci]))
            .collect();
        let full = gms[capacities.len() - 1];
        // Smallest pump retaining >= 95 % of the full-size benefit.
        let (ci, gm) = gms
            .iter()
            .enumerate()
            .find(|(_, &g)| (g - 1.0) >= 0.95 * (full - 1.0))
            .map(|(i, &g)| (i, g))
            .unwrap_or((capacities.len() - 1, full));
        let usable = capacities[ci] * pt_lcp_usable;
        let raw = (usable / 0.7).ceil() as u64;
        println!(
            "{:<26} {:>12} {:>9.1}% {:>14.3}",
            format!("GCP-{}-0.7 ({} LCP)", mapping.label(), capacities[ci]),
            raw,
            area_overhead_percent(raw, 560),
            gm
        );
    }

    println!("\npaper: every GCP variant costs a small fraction of 2xLocal's 100 % area overhead");
    let worst_raw = (1.0 * pt_lcp_usable / 0.7).ceil() as u64;
    assert!(
        area_overhead_percent(worst_raw, 560) < 50.0,
        "a 1-LCP GCP must cost far less than doubling all local pumps"
    );
}
