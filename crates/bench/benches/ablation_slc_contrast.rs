//! Ablation (motivating §2.2): why Hay et al.'s heuristic works for SLC
//! but collapses for MLC.
//!
//! SLC PCM writes finish in a single pulse, so per-write token holds are
//! tight: the paper reports only a 2 % loss for DIMM-only on SLC, versus
//! 33 % on MLC where the same heuristic pins a write's full RESET power
//! for the whole multi-iteration P&V sequence. We approximate the SLC
//! write discipline with the single-pulse write mode (every changed cell
//! programmed by one RESET-length pulse) and compare the DIMM-only loss
//! under each discipline.

use fpb_bench::{all_workloads, bench_options, geometric_mean};
use fpb_sim::engine::{run_workload_warmed, warm_cores};
use fpb_sim::SchemeSetup;
use fpb_types::SystemConfig;

fn main() {
    let cfg = SystemConfig::default();
    let opts = bench_options();
    let wls = all_workloads();

    let mut mlc_loss = Vec::new();
    let mut slc_loss = Vec::new();
    println!("=== DIMM-only loss vs Ideal: iterative (MLC) vs single-pulse (SLC-like) writes ===");
    println!("{:<10} {:>12} {:>12}", "workload", "MLC loss", "SLC-like loss");
    for wl in &wls {
        let cores = warm_cores(wl, &cfg, &opts);
        let mlc_ideal = run_workload_warmed(wl, &cfg, &SchemeSetup::ideal(&cfg), &opts, &cores);
        let mlc_dimm = run_workload_warmed(wl, &cfg, &SchemeSetup::dimm_only(&cfg), &opts, &cores);
        let slc_ideal = run_workload_warmed(
            wl,
            &cfg,
            &SchemeSetup::ideal(&cfg).with_preset(),
            &opts,
            &cores,
        );
        let slc_dimm = run_workload_warmed(
            wl,
            &cfg,
            &SchemeSetup::dimm_only(&cfg).with_preset(),
            &opts,
            &cores,
        );
        let m = mlc_dimm.cpi() / mlc_ideal.cpi(); // >= 1: slowdown factor
        let s = slc_dimm.cpi() / slc_ideal.cpi();
        println!(
            "{:<10} {:>11.1}% {:>11.1}%",
            wl.name,
            (m - 1.0) * 100.0,
            (s - 1.0) * 100.0
        );
        mlc_loss.push(m);
        slc_loss.push(s);
    }
    let gm = geometric_mean(&mlc_loss) - 1.0;
    let gs = geometric_mean(&slc_loss) - 1.0;
    println!("\npaper: Hay's heuristic loses ~2 % on SLC but 33 % on MLC (§2.2)");
    println!(
        "measured gmean losses: MLC {:.1} %, SLC-like {:.1} %",
        gm * 100.0,
        gs * 100.0
    );
    assert!(
        gs < gm * 0.6,
        "single-pulse writes must suffer far less from per-write budgeting: {gs} vs {gm}"
    );
}
