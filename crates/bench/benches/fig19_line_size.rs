//! Figure 19 — FPB speedup for different memory line sizes (each column
//! normalized to DIMM+chip at the same line size).
//!
//! Expected shape (§6.4.1): the improvement grows with line size (64 B
//! writes barely stress the budget; 256 B writes stress it heavily).

use fpb_bench::{all_workloads, bench_options, print_table, run_matrix, Row};
use fpb_types::SystemConfig;

fn main() {
    let opts = bench_options();
    let wls = all_workloads();
    let sizes = [64u32, 128, 256];

    let mut rows: Vec<Row> = wls
        .iter()
        .map(|wl| Row {
            label: wl.name.to_string(),
            values: Vec::new(),
        })
        .collect();
    for &bytes in &sizes {
        let cfg = SystemConfig::default().with_line_bytes(bytes);
        let matrix = run_matrix(&cfg, &wls, &["dimm-chip", "fpb"], &opts);
        for (wi, ms) in matrix.iter().enumerate() {
            rows[wi].values.push(ms[1].speedup_over(&ms[0]));
        }
    }
    let gmeans: Vec<f64> = (0..sizes.len())
        .map(|c| {
            fpb_bench::geometric_mean(&rows.iter().map(|r| r.values[c]).collect::<Vec<_>>())
        })
        .collect();
    rows.push(Row {
        label: "gmean".to_string(),
        values: gmeans.clone(),
    });

    print_table(
        "Figure 19: FPB speedup vs DIMM+chip at each line size",
        &["64B", "128B", "256B"],
        &rows,
    );

    println!("\npaper gmeans: 64B +41.3 %, 128B +61.8 %, 256B +75.6 %");
    println!(
        "measured gmeans: 64B +{:.1} %, 128B +{:.1} %, 256B +{:.1} %",
        (gmeans[0] - 1.0) * 100.0,
        (gmeans[1] - 1.0) * 100.0,
        (gmeans[2] - 1.0) * 100.0
    );
    assert!(
        gmeans[2] >= gmeans[0],
        "larger lines must benefit at least as much"
    );
}
