//! Ablation (beyond the paper's main results): cell mapping crossed with
//! budgeting scheme, plus write-wear balance.
//!
//! The paper only evaluates mappings under FPB-GCP; this ablation shows
//! how much of the mapping benefit survives *without* the GCP (pure
//! DIMM+chip) and with the full FPB stack, and reports each mapping's
//! per-chip write-wear imbalance (a lifetime proxy).

use fpb_bench::{all_workloads, bench_options, geometric_mean, print_table, Row};
use fpb_pcm::CellMapping;
use fpb_sim::engine::{run_workload_warmed, warm_cores};
use fpb_sim::SchemeSetup;
use fpb_types::SystemConfig;

fn main() {
    let cfg = SystemConfig::default();
    let opts = bench_options();
    let wls = all_workloads();
    let mappings = CellMapping::ALL;

    let mut rows = Vec::new();
    let mut per_col: Vec<Vec<f64>> = vec![Vec::new(); mappings.len() * 2];
    let mut imbalance_sum = vec![0.0f64; mappings.len()];
    for wl in &wls {
        let cores = warm_cores(wl, &cfg, &opts);
        let mut values = Vec::new();
        // Baseline: DIMM+chip with the default (naive) mapping.
        let base = run_workload_warmed(wl, &cfg, &SchemeSetup::dimm_chip(&cfg), &opts, &cores);
        for (mi, &m) in mappings.iter().enumerate() {
            let chip = run_workload_warmed(
                wl,
                &cfg,
                &SchemeSetup::dimm_chip(&cfg).with_mapping(m),
                &opts,
                &cores,
            );
            values.push(chip.speedup_over(&base));
            imbalance_sum[mi] += chip.chip_imbalance();
        }
        for &m in &mappings {
            let fpb = run_workload_warmed(
                wl,
                &cfg,
                &SchemeSetup::fpb(&cfg).with_mapping(m),
                &opts,
                &cores,
            );
            values.push(fpb.speedup_over(&base));
        }
        for (c, v) in per_col.iter_mut().zip(&values) {
            c.push(*v);
        }
        rows.push(Row {
            label: wl.name.to_string(),
            values,
        });
    }
    rows.push(Row {
        label: "gmean".to_string(),
        values: per_col.iter().map(|c| geometric_mean(c)).collect(),
    });

    print_table(
        "Ablation: mapping x scheme, speedup vs DIMM+chip(NE)",
        &["chip+NE", "chip+VIM", "chip+BIM", "FPB+NE", "FPB+VIM", "FPB+BIM"],
        &rows,
    );

    println!("\nper-chip write-wear imbalance (max/mean cells, 1.0 = even), averaged:");
    for (mi, &m) in mappings.iter().enumerate() {
        println!("  {:<5} {:.3}", m.label(), imbalance_sum[mi] / wls.len() as f64);
    }

    let g = rows.last().expect("gmean");
    assert!(
        g.values[5] >= g.values[3] - 0.05,
        "BIM under FPB must hold up vs NE under FPB"
    );
    println!("\ntakeaway: interleaved mappings help even without the GCP by evening");
    println!("chip budgets, and they also even long-term wear across chips.");
}
