//! Ablation (beyond the paper's main results): the two extensions the
//! paper discusses but does not evaluate.
//!
//! * **PreSET** (§7, [22]): pre-SET lines in the cache so eviction writes
//!   are a single RESET pulse — fast, but demanding full RESET power for
//!   every cell at once ("tends to increase the demand for power tokens").
//! * **Per-chip GCP regulation** (§4.2): regulate the global pump's output
//!   per chip so near chips pay less wire loss — better effective
//!   efficiency at the cost of control logic.

use fpb_bench::{all_workloads, bench_options, print_table, run_matrix_setups, speedup_rows};
use fpb_sim::SchemeSetup;
use fpb_types::SystemConfig;

fn main() {
    // Use a low-efficiency GCP so regulation has something to recover.
    let cfg = SystemConfig::default().with_gcp_efficiency(0.5);
    let opts = bench_options();
    let wls = all_workloads();

    let setups = vec![
        SchemeSetup::dimm_chip(&cfg),
        SchemeSetup::fpb(&cfg),
        SchemeSetup::fpb(&cfg).with_gcp_regulation().expect("fpb has a GCP"),
        SchemeSetup::fpb(&cfg).with_preset(),
        SchemeSetup::ideal(&cfg),
    ];
    let matrix = run_matrix_setups(&cfg, &wls, &setups, &opts);
    let rows = speedup_rows(&wls, &matrix, 0);
    print_table(
        "Ablation: PreSET and per-chip GCP regulation (E_GCP = 0.5), vs DIMM+chip",
        &["DIMM+chip", "FPB", "FPB+reg", "FPB+PreSET", "Ideal"],
        &rows,
    );

    let g = rows.last().expect("gmean");
    println!("\nexpectations:");
    println!("- regulation >= plain FPB at low E_GCP (recovers conversion loss)");
    println!("- PreSET trades power for latency: single-RESET writes are fast but");
    println!("  front-load full RESET power (the paper predicts higher token demand)");
    println!(
        "measured gmeans: FPB {:.3}, FPB+reg {:.3}, FPB+PreSET {:.3}",
        g.values[1], g.values[2], g.values[3]
    );
    assert!(
        g.values[2] >= g.values[1] - 0.03,
        "regulation must not hurt: {} vs {}",
        g.values[2],
        g.values[1]
    );
}
