//! Table 2 — simulated applications.
//!
//! Prints the catalog's RPKI/WPKI targets and the rates actually measured
//! by the baseline (DIMM+chip) simulation, verifying the synthetic trace
//! calibration.

use fpb_bench::{all_workloads, bench_options};
use fpb_sim::{run_workload, SchemeSetup};
use fpb_types::SystemConfig;

fn main() {
    let cfg = SystemConfig::default();
    let opts = bench_options();
    let setup = SchemeSetup::dimm_chip(&cfg);

    println!("=== Table 2: simulated applications (RPKI / WPKI, workload aggregate) ===");
    println!(
        "{:<10} {:>10} {:>10} {:>12} {:>12}",
        "workload", "RPKI(tgt)", "WPKI(tgt)", "RPKI(meas)", "WPKI(meas)"
    );
    let mut worst_ratio: f64 = 1.0;
    for wl in all_workloads() {
        let m = run_workload(&wl, &cfg, &setup, &opts);
        let ki = m.instructions_per_core as f64 / 1000.0;
        let rpki = m.pcm_reads as f64 / ki;
        let wpki = m.pcm_writes as f64 / ki;
        println!(
            "{:<10} {:>10.2} {:>10.2} {:>12.2} {:>12.2}",
            wl.name, wl.table2_rpki, wl.table2_wpki, rpki, wpki
        );
        if wl.table2_rpki > 0.2 {
            worst_ratio = worst_ratio.max(rpki / wl.table2_rpki).max(wl.table2_rpki / rpki);
        }
    }
    println!("\nworst read-rate calibration ratio (non-trivial workloads): {worst_ratio:.2}x");
}
