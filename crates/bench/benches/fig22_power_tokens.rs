//! Figure 22 — FPB speedup for different DIMM power-token budgets (±1/8
//! of an LCP across all chips; each column normalized to DIMM+chip with
//! the same budget).
//!
//! Expected shape (§6.4.4): FPB helps more when the budget is tighter —
//! careful budgeting matters most when tokens are scarce.

use fpb_bench::{all_workloads, bench_options, print_table, run_matrix, Row};
use fpb_types::SystemConfig;

fn main() {
    let opts = bench_options();
    let wls = all_workloads();
    let budgets = [466u64, 532, 598];

    let mut rows: Vec<Row> = wls
        .iter()
        .map(|wl| Row {
            label: wl.name.to_string(),
            values: Vec::new(),
        })
        .collect();
    for &pt in &budgets {
        let cfg = SystemConfig::default().with_pt_dimm(pt);
        let matrix = run_matrix(&cfg, &wls, &["dimm-chip", "fpb"], &opts);
        for (wi, ms) in matrix.iter().enumerate() {
            rows[wi].values.push(ms[1].speedup_over(&ms[0]));
        }
    }
    let gmeans: Vec<f64> = (0..budgets.len())
        .map(|c| fpb_bench::geometric_mean(&rows.iter().map(|r| r.values[c]).collect::<Vec<_>>()))
        .collect();
    rows.push(Row {
        label: "gmean".to_string(),
        values: gmeans.clone(),
    });

    print_table(
        "Figure 22: FPB speedup vs DIMM+chip at each DIMM token budget",
        &["466", "532", "598"],
        &rows,
    );

    println!("\npaper: FPB does better with a tighter power budget");
    println!(
        "measured gmeans: 466 +{:.1} %, 532 +{:.1} %, 598 +{:.1} %",
        (gmeans[0] - 1.0) * 100.0,
        (gmeans[1] - 1.0) * 100.0,
        (gmeans[2] - 1.0) * 100.0
    );
    assert!(
        gmeans[0] >= gmeans[2] - 0.05,
        "tight budgets must benefit at least as much as loose ones"
    );
}
