//! Table 1 — baseline configuration.
//!
//! Prints the simulated system's baseline parameters and checks them
//! against the paper's Table 1.

use fpb_types::SystemConfig;

fn main() {
    let cfg = SystemConfig::default();
    cfg.validate().expect("baseline config must validate");

    println!("=== Table 1: baseline configuration ===");
    println!("CPU          {}-core, 4 GHz, single-issue, in-order", cfg.cores);
    println!(
        "L1 I/D       private, {} KB/core, {} B line, {}-cycle hit",
        cfg.cache.l1_kib, cfg.cache.l12_line_bytes, cfg.cache.l1_hit_cycles
    );
    println!(
        "L2           private, {} MB/core, {}-way LRU, {} B line, {}-cycle hit",
        cfg.cache.l2_kib / 1024,
        cfg.cache.l2_ways,
        cfg.cache.l12_line_bytes,
        cfg.cache.l2_hit_cycles
    );
    println!(
        "DRAM L3      private, off-chip, {} MB/core, {}-way LRU, {} B line, {}-cycle hit",
        cfg.cache.l3_mib_per_core,
        cfg.cache.l3_ways,
        cfg.cache.l3_line_bytes,
        cfg.cache.l3_hit_cycles
    );
    println!(
        "Controller   {}-entry R / {}-entry W queues, MC-to-bank {} cycles",
        cfg.queues.read_entries, cfg.queues.write_entries, cfg.queues.mc_to_bank_cycles
    );
    println!(
        "PCM          {} GB, {} banks x {} chips, MLC read {} cycles",
        cfg.pcm.capacity_gib, cfg.pcm.banks, cfg.pcm.chips, cfg.pcm.read_cycles
    );
    println!(
        "             RESET {} cycles ({} ns), SET {} cycles ({} ns)",
        cfg.pcm.reset_cycles,
        cfg.pcm.reset_cycles / 4,
        cfg.pcm.set_cycles,
        cfg.pcm.set_cycles / 4
    );
    println!(
        "Write model  '00' {} iter, '01' {:.1} iters avg, '10' {:.1} iters avg, '11' {} iters",
        cfg.pcm.write_model.l00.mean_iterations(),
        cfg.pcm.write_model.l01.mean_iterations(),
        cfg.pcm.write_model.l10.mean_iterations(),
        cfg.pcm.write_model.l11.mean_iterations()
    );
    println!(
        "Power        PT_DIMM = {} tokens, E_LCP = {}, E_GCP = {}, C = {}",
        cfg.power.pt_dimm, cfg.power.e_lcp, cfg.power.e_gcp, cfg.power.reset_set_power_ratio
    );
    println!(
        "             PT_LCP = {:.1} tokens/chip (Eq. 4)",
        cfg.power.pt_lcp_millis(cfg.pcm.chips) as f64 / 1000.0
    );

    // Paper checks.
    assert_eq!(cfg.cores, 8);
    assert_eq!(cfg.pcm.read_cycles, 1000);
    assert_eq!(cfg.pcm.reset_cycles, 500);
    assert_eq!(cfg.pcm.set_cycles, 1000);
    assert_eq!(cfg.power.pt_dimm, 560);
    assert_eq!(cfg.power.pt_lcp_millis(8), 66_500);
    assert!((cfg.pcm.write_model.l01.mean_iterations() - 8.0).abs() < 0.05);
    assert!((cfg.pcm.write_model.l10.mean_iterations() - 6.0).abs() < 0.05);
    println!("\nall Table 1 parameters verified");
}
